// E1 — Reproduces Table 1 of the paper ("Tractability results for PQE"),
// attaching measured evidence to every row:
//
//   row 1 (bounded HW, SJF, safe):     FP via safe plans + our FPRAS agrees;
//   row 2 (bounded HW, SJF, unsafe):   exact is #P-hard (exponential-time
//                                      oracle blowup measured) yet our FPRAS
//                                      stays polynomial and accurate;
//   row 3 (unbounded HW, SJF, safe):   Open for combined FPRAS — we show the
//                                      width budget gating the construction;
//   row 4 (self-joins):                Depends/Open — the pipeline reports
//                                      NotSupported, exact oracles still run.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/engine.h"
#include "obs/export.h"
#include "core/pqe.h"
#include "cq/builders.h"
#include "eval/eval.h"
#include "hypertree/decomposition.h"
#include "lineage/karp_luby.h"
#include "lineage/lineage.h"
#include "safeplan/safe_plan.h"
#include "util/check.h"
#include "workload/generators.h"

namespace pqe {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

EstimatorConfig FprasConfig() {
  EstimatorConfig cfg;
  cfg.epsilon = 0.2;
  cfg.seed = 42;
  cfg.pool_size = 160;  // fixed pool: we measure scaling shape, not theory
  cfg.repetitions = 3;
  return cfg;
}

void Row1SafeBoundedWidth() {
  std::printf(
      "--- Row 1: bounded HW + self-join-free + safe "
      "(prior: FP [Dalvi-Suciu]; ours: FPRAS) ---\n");
  std::printf("%-10s %-8s %-14s %-14s %-12s %-10s\n", "hubs", "|D|",
              "safe-plan(ms)", "fpras(ms)", "P(safe)", "rel.err");
  auto star = MakeStarQuery(4).MoveValue();
  for (uint32_t hubs : {2u, 4u, 8u, 12u}) {
    StarDataOptions sopt;
    sopt.hubs = hubs;
    sopt.spokes_per_hub = 2;
    sopt.density = 0.8;
    sopt.seed = hubs;
    auto db = MakeStarDatabase(star, sopt).MoveValue();
    ProbabilityModel pm;
    pm.seed = hubs + 1;
    ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

    auto t0 = std::chrono::steady_clock::now();
    double exact = SafePlanProbability(star.query, pdb).MoveValue();
    const double safe_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    auto est = PqeEstimate(star.query, pdb, FprasConfig()).MoveValue();
    const double fpras_ms = MillisSince(t0);

    const double rel = exact > 0 ? est.probability / exact - 1.0 : 0.0;
    std::printf("%-10u %-8zu %-14.2f %-14.2f %-12.6f %+-10.3f\n", hubs,
                pdb.NumFacts(), safe_ms, fpras_ms, exact, rel);
  }
  std::printf(
      "  shape check: safe-plan time grows polynomially; FPRAS matches the\n"
      "  exact FP answer within the epsilon band on every safe instance.\n\n");
}

void Row2UnsafeBoundedWidth() {
  std::printf(
      "--- Row 2: bounded HW + self-join-free + UNSAFE "
      "(prior: #P-hard [Dalvi-Suciu]; ours: FPRAS — the paper's headline) "
      "---\n");
  std::printf("%-8s %-8s %-16s %-14s %-14s %-10s\n", "|D|", "method",
              "exact(ms)", "fpras(ms)", "P", "rel.err");
  auto path = MakePathQuery(4).MoveValue();  // a 3Path member: #P-hard
  for (uint32_t width : {2u, 3u, 4u, 5u}) {
    LayeredGraphOptions opt;
    opt.width = width;
    opt.density = 0.7;
    opt.seed = width;
    auto db = MakeLayeredPathDatabase(path, opt).MoveValue();
    ProbabilityModel pm;
    pm.seed = width * 3 + 1;
    ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

    // Exact oracle: enumeration when feasible, else Shannon over lineage.
    double exact = -1.0;
    double exact_ms = 0.0;
    std::string method;
    auto t0 = std::chrono::steady_clock::now();
    if (pdb.NumFacts() <= 22) {
      exact = ExactProbabilityByEnumeration(pdb, path.query, 22)
                  .MoveValue()
                  .ToDouble();
      method = "enumeration";
    } else {
      auto lineage = BuildLineage(path.query, pdb.database()).MoveValue();
      exact = ExactDnfProbability(lineage, pdb).MoveValue().ToDouble();
      method = "shannon-dnf";
    }
    exact_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    auto est = PqeEstimate(path.query, pdb, FprasConfig()).MoveValue();
    const double fpras_ms = MillisSince(t0);

    const double rel = exact > 0 ? est.probability / exact - 1.0 : 0.0;
    std::printf("%-8zu %-8s %-16.2f %-14.2f %-14.6f %+-10.3f\n",
                pdb.NumFacts(), method.c_str(), exact_ms, fpras_ms, exact,
                rel);
  }
  std::printf(
      "  shape check: the exact oracle's cost explodes with |D| (the row is\n"
      "  #P-hard in data complexity) while the FPRAS cost grows polynomially\n"
      "  and its estimate tracks the exact probability.\n\n");
}

void Row3UnboundedWidth() {
  std::printf(
      "--- Row 3: UNBOUNDED hypertree width + self-join-free + safe "
      "(prior: FP; combined FPRAS: Open) ---\n");
  // The pipeline is gated on a width budget: cyclic cores above the budget
  // are rejected while the safe-plan (when the query is safe) is untouched.
  for (uint32_t n : {3u, 4u, 5u, 6u}) {
    auto cyc = MakeCycleQuery(n).MoveValue();
    auto w1 = Decompose(cyc.query, 1).status();
    auto w2 = Decompose(cyc.query, 2);
    std::printf("  cycle C_%u: width-1 -> %s; width-2 -> %s (width %zu)\n", n,
                w1.ok() ? "ok" : StatusCodeToString(w1.code()),
                w2.ok() ? "ok" : StatusCodeToString(w2.status().code()),
                w2.ok() ? w2->Width() : 0);
  }
  std::printf(
      "  The FPRAS of Theorem 1 requires a constant width bound; queries\n"
      "  outside every budget are reported NotSupported — the combined-\n"
      "  complexity status of this row is Open in the paper.\n\n");
}

void Row4SelfJoins() {
  std::printf(
      "--- Row 4: self-joins (safety Depends [DS12]; combined FPRAS: Open) "
      "---\n");
  auto sj = MakeSelfJoinPathQuery(3).MoveValue();
  Database db(sj.schema);
  PQE_CHECK_OK(db.AddFactByName("R", {"a", "b"}).status());
  PQE_CHECK_OK(db.AddFactByName("R", {"b", "c"}).status());
  PQE_CHECK_OK(db.AddFactByName("R", {"c", "d"}).status());
  PQE_CHECK_OK(db.AddFactByName("R", {"b", "d"}).status());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  auto fpras = PqeEstimate(sj.query, pdb, FprasConfig());
  auto exact = ExactProbabilityByEnumeration(pdb, sj.query).MoveValue();
  std::printf(
      "  self-join path, |D|=%zu: FPRAS -> %s; exact enumeration -> %.6f\n",
      pdb.NumFacts(), fpras.status().ToString().c_str(), exact.ToDouble());
  std::printf(
      "  The Proposition 1 construction requires self-join-freeness (a\n"
      "  relation's facts must be emitted by exactly one atom); the engine\n"
      "  rejects the query and exact oracles remain available.\n\n");
}

}  // namespace
}  // namespace pqe

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  const std::string metrics_out =
      pqe::obs::ConsumeMetricsOutFlag(&argc, argv);
  std::printf(
      "E1 — Table 1 of van Bremen & Meel, PODS'23: the combined FPRAS "
      "landscape\n"
      "====================================================================="
      "\n\n");
  pqe::Row1SafeBoundedWidth();
  pqe::Row2UnsafeBoundedWidth();
  pqe::Row3UnboundedWidth();
  pqe::Row4SelfJoins();
  std::printf(
      "Summary (paper's Table 1, rightmost columns):\n"
      "  bounded HW + SJF + safe    : prior FP          | ours FPRAS  "
      "(demonstrated, row 1)\n"
      "  bounded HW + SJF + unsafe  : prior #P-hard     | ours FPRAS  "
      "(demonstrated, row 2)\n"
      "  unbounded HW + SJF + safe  : prior FP          | Open        "
      "(gated, row 3)\n"
      "  self-joins                 : prior Depends     | Open        "
      "(rejected, row 4)\n");
  if (!metrics_out.empty()) {
    pqe::Status status = pqe::obs::WriteMetricsJsonFile(metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics_out: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
