// E7 — Cost of the Section 5.1 multiplier gadget: automaton growth and
// runtime as fact-probability denominators grow. The paper's construction
// adds only O(log n) states per transition (Remark 2); the observed state
// counts and the tree-size stratum k should grow logarithmically in the
// denominator.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pqe.h"
#include "core/ur_construction.h"
#include "cq/builders.h"
#include "obs/export.h"
#include "util/check.h"
#include "workload/generators.h"

namespace pqe {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace
}  // namespace pqe

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  using namespace pqe;
  const std::string metrics_out = obs::ConsumeMetricsOutFlag(&argc, argv);
  std::printf(
      "E7 — Multiplier-gadget overhead vs probability denominator (Sec 5.1)\n"
      "=====================================================================\n\n");
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 0.7;
  opt.seed = 9;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();

  // Baseline: the unweighted (UR) automaton.
  auto ur = BuildUrAutomaton(qi.query, db, UrConstructionOptions{})
                .MoveValue();
  std::printf("UR baseline: |D'|=%zu states=%zu transitions=%zu k=%zu\n\n",
              ur.tree_size, ur.nfta.NumStates(), ur.nfta.NumTransitions(),
              ur.tree_size);

  std::printf("%-12s %-10s %-12s %-12s %-8s %-12s %-12s\n", "denominator",
              "bits/fact", "states", "transitions", "k", "build(ms)",
              "estimate(ms)");
  EstimatorConfig cfg;
  cfg.epsilon = 0.25;
  cfg.seed = 33;
  cfg.pool_size = 96;
  for (uint64_t den : {2ull, 4ull, 16ull, 256ull, 65536ull, 1048576ull}) {
    // Every fact gets probability (den/2 + 1) / den — denominators of
    // growing bit width, both branches needing comparators.
    std::vector<Probability> probs(db.NumFacts(),
                                   Probability{den / 2 + 1, den});
    auto pdb = ProbabilisticDatabase::Make(db, probs).MoveValue();

    auto t0 = std::chrono::steady_clock::now();
    auto automaton =
        BuildPqeAutomaton(qi.query, pdb, UrConstructionOptions{}).MoveValue();
    const double build_ms = MillisSince(t0);

    t0 = std::chrono::steady_clock::now();
    auto est = PqeEstimate(qi.query, pdb, cfg).MoveValue();
    const double est_ms = MillisSince(t0);

    const double bits_per_fact =
        static_cast<double>(automaton.tree_size - ur.tree_size) /
        static_cast<double>(ur.tree_size);
    std::printf("%-12llu %-10.1f %-12zu %-12zu %-8zu %-12.2f %-12.2f\n",
                static_cast<unsigned long long>(den), bits_per_fact,
                automaton.weighted.NumStates(),
                automaton.weighted.NumTransitions(), automaton.tree_size,
                build_ms, est_ms);
    (void)est;
  }
  std::printf(
      "\n  shape check: states/transitions/k grow by an additive O(log den)\n"
      "  per doubling ladder step — the gadget is logarithmic in the\n"
      "  probability numerators, exactly as Remark 2 promises.\n");
  if (!metrics_out.empty()) {
    Status status = obs::WriteMetricsJsonFile(metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics_out: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
