// E11 — Counting-core hot-path overhaul (docs/performance.md): wall-time of
// the full PQE estimate pipeline with the hot-path caches (reusable
// WeightedPickers + memoized run-state membership + CSR automata accessors)
// against the in-binary legacy baseline (EstimatorConfig::
// disable_hotpath_caches), on the E4 data-scaling sweep and the E8 query-
// length sweep, single-threaded.
//
//   bench_counting_hotpath [--smoke] [--metrics_out=BENCH_counting_hotpath.json]
//
// Each sweep cell is recorded as gauges
// pqe.bench.counting_hotpath.<sweep>.<point>.{legacy_ms,cached_ms,fast_ms,
// speedup,fast_speedup}, plus memo hit/miss, picker-build, alias-build and
// batch-draw counts from the cached/fast runs' stats. fast_speedup is the
// batched alias-table kernels (kernel_mode=fast) against the cached exact
// tier.
// The two modes are draw-identical by construction, so every cell also
// cross-checks that the cached estimate equals the legacy one bit for bit;
// the largest oracle-feasible E4 cell (width 3 — the exact subset DP blows
// its entry budget beyond that) is additionally checked against the exact
// oracle within the configured ε band. --smoke shrinks both sweeps to their
// two smallest cells for CI.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "core/pqe.h"
#include "cq/builders.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "workload/generators.h"

namespace pqe {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct CellResult {
  double legacy_ms = 0.0;
  double cached_ms = 0.0;
  double fast_ms = 0.0;
  double log2_probability = 0.0;       // exact tier (cached == legacy)
  double fast_log2_probability = 0.0;  // fast tier (statistical only)
};

void RecordCell(const std::string& cell, const CellResult& r,
                const CountStats& cached_stats,
                const CountStats& fast_stats) {
  const std::string prefix = "pqe.bench.counting_hotpath." + cell;
  auto& reg = obs::MetricRegistry::Global();
  reg.GetGauge(prefix + ".legacy_ms").Set(r.legacy_ms);
  reg.GetGauge(prefix + ".cached_ms").Set(r.cached_ms);
  reg.GetGauge(prefix + ".fast_ms").Set(r.fast_ms);
  reg.GetGauge(prefix + ".speedup").Set(r.legacy_ms / r.cached_ms);
  reg.GetGauge(prefix + ".fast_speedup").Set(r.cached_ms / r.fast_ms);
  reg.GetGauge(prefix + ".picker_builds")
      .Set(static_cast<double>(cached_stats.picker_builds));
  reg.GetGauge(prefix + ".alias_builds")
      .Set(static_cast<double>(fast_stats.alias_builds));
  reg.GetGauge(prefix + ".batch_draws")
      .Set(static_cast<double>(fast_stats.batch_draws));
  reg.GetGauge(prefix + ".memo_hits")
      .Set(static_cast<double>(cached_stats.runstates_memo_hits));
  reg.GetGauge(prefix + ".memo_misses")
      .Set(static_cast<double>(cached_stats.runstates_memo_misses));
}

// Runs the estimate three times — legacy hot path, cached, then the batched
// fast kernels — and checks the bit-identical-draws contract between the two
// exact-tier runs before reporting timings.
CellResult MeasureCell(const std::string& cell, const ConjunctiveQuery& query,
                       const ProbabilisticDatabase& pdb,
                       const EstimatorConfig& base_cfg) {
  CellResult out;
  EstimatorConfig cfg = base_cfg;
  cfg.num_threads = 1;

  cfg.disable_hotpath_caches = true;
  auto t0 = std::chrono::steady_clock::now();
  auto legacy = PqeEstimate(query, pdb, cfg).MoveValue();
  out.legacy_ms = MillisSince(t0);

  cfg.disable_hotpath_caches = false;
  t0 = std::chrono::steady_clock::now();
  auto cached = PqeEstimate(query, pdb, cfg).MoveValue();
  out.cached_ms = MillisSince(t0);

  // The cached path consumes the same RNG stream and answers the same
  // membership queries as the legacy path, so the estimates must agree
  // exactly — any drift is a bug, not noise.
  PQE_CHECK(cached.log2_probability == legacy.log2_probability);
  PQE_CHECK(cached.tree_count.ToString() == legacy.tree_count.ToString());
  out.log2_probability = cached.log2_probability;

  // Fast tier: different draw stream (alias tables over block RNG words), so
  // only statistical agreement is expected; the oracle cell gates accuracy.
  cfg.kernel_mode = KernelMode::kFast;
  t0 = std::chrono::steady_clock::now();
  auto fast = PqeEstimate(query, pdb, cfg).MoveValue();
  out.fast_ms = MillisSince(t0);
  out.fast_log2_probability = fast.log2_probability;
  PQE_CHECK(std::isfinite(fast.log2_probability) ||
            fast.log2_probability == -std::numeric_limits<double>::infinity());

  RecordCell(cell, out, cached.stats, fast.stats);
  std::printf("  %-10s %-12.1f %-12.1f %-12.1f %-8.2f %-8.2f %-12.4f "
              "hits=%zu misses=%zu batches=%zu\n",
              cell.c_str(), out.legacy_ms, out.cached_ms, out.fast_ms,
              out.legacy_ms / out.cached_ms, out.cached_ms / out.fast_ms,
              out.log2_probability, cached.stats.runstates_memo_hits,
              cached.stats.runstates_memo_misses, fast.stats.batch_draws);
  return out;
}

// E4-style sweep: fixed path query (length 4), database width 2..max_width.
// smoke_pool > 0 shrinks the per-stratum pools so CI completes in seconds.
void SweepDataScaling(uint32_t max_width, size_t smoke_pool) {
  std::printf(
      "E4 sweep — path query length 4, layered width 2..%u, density 0.6\n",
      max_width);
  std::printf("  %-10s %-12s %-12s %-12s %-8s %-8s %s\n", "cell",
              "legacy_ms", "cached_ms", "fast_ms", "speedup", "fast_spd",
              "log2(P)");
  auto qi = MakePathQuery(4).MoveValue();
  EstimatorConfig cfg;
  cfg.epsilon = 0.25;
  cfg.seed = 11;
  cfg.pool_size = smoke_pool > 0 ? smoke_pool : 96;
  // Median-of-3: the FPRAS's own δ mechanism. One repetition leaves the
  // oracle cell's ε gate at the mercy of a single draw stream (the fast
  // kernel's per-run variance breaches ε on ~1/3 of seeds); the median
  // concentrates both kernels inside the band. Ratios (speedups) are
  // unchanged — every mode pays the same factor.
  cfg.repetitions = 3;
  for (uint32_t width = 2; width <= max_width; ++width) {
    LayeredGraphOptions opt;
    opt.width = width;
    opt.density = 0.6;
    opt.seed = width;
    auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
    ProbabilityModel pm;
    pm.max_denominator = 8;
    pm.seed = width + 2;
    ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
    const CellResult r = MeasureCell("e4.w" + std::to_string(width), qi.query,
                                     pdb, cfg);
    // Accuracy gate on the largest oracle-feasible cell: the (deterministic,
    // fixed-seed) estimate must sit inside the configured ε band around the
    // exact oracle. The oracle's subset DP is worst-case exponential and
    // capped at 2M table entries; on this sweep width 3 is the largest cell
    // that fits (width 4 burns minutes of BigUint arithmetic before
    // exhausting the budget), so the gate is pinned there.
    constexpr uint32_t kOracleWidth = 3;
    if (width == kOracleWidth) {
      auto exact = PqeExactViaAutomaton(qi.query, pdb).MoveValue();
      const double exact_p = exact.ToDouble();
      const double est_p = std::exp2(r.log2_probability);
      const double rel_err = std::abs(est_p / exact_p - 1.0);
      obs::MetricRegistry::Global()
          .GetGauge("pqe.bench.counting_hotpath.e4.rel_err")
          .Set(rel_err);
      std::printf("  e4.w%u accuracy: estimate %.6g vs exact %.6g "
                  "(rel err %.4f, epsilon %.2f)\n",
                  width, est_p, exact_p, rel_err, cfg.epsilon);
      PQE_CHECK(rel_err <= cfg.epsilon);
      // The fast tier draws a different stream but must meet the same
      // accuracy guarantee against the exact oracle.
      const double fast_p = std::exp2(r.fast_log2_probability);
      const double fast_rel_err = std::abs(fast_p / exact_p - 1.0);
      obs::MetricRegistry::Global()
          .GetGauge("pqe.bench.counting_hotpath.e4.fast_rel_err")
          .Set(fast_rel_err);
      std::printf("  e4.w%u accuracy (fast): estimate %.6g vs exact %.6g "
                  "(rel err %.4f, epsilon %.2f)\n",
                  width, fast_p, exact_p, fast_rel_err, cfg.epsilon);
      PQE_CHECK(fast_rel_err <= cfg.epsilon);
    }
  }
  std::printf("\n");
}

// E8-style sweep: path query length 2..max_len on a fixed dense database.
void SweepQueryScaling(uint32_t max_len, size_t smoke_pool) {
  std::printf(
      "E8 sweep — path query length 2..%u, layered width 4, density 1.0, "
      "median-of-3\n",
      max_len);
  std::printf("  %-10s %-12s %-12s %-12s %-8s %-8s %s\n", "cell",
              "legacy_ms", "cached_ms", "fast_ms", "speedup", "fast_spd",
              "log2(P)");
  EstimatorConfig cfg;
  cfg.epsilon = 0.25;
  cfg.seed = 17;
  cfg.pool_size = smoke_pool > 0 ? smoke_pool : 160;
  cfg.repetitions = smoke_pool > 0 ? 1 : 3;
  for (uint32_t i = 2; i <= max_len; ++i) {
    auto qi = MakePathQuery(i).MoveValue();
    LayeredGraphOptions opt;
    opt.width = 4;
    opt.density = 1.0;
    opt.seed = 2;
    auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
    ProbabilityModel pm;
    pm.max_denominator = 8;
    pm.seed = i;
    ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
    MeasureCell("e8.i" + std::to_string(i), qi.query, pdb, cfg);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace pqe

int main(int argc, char** argv) {
  setvbuf(stdout, nullptr, _IONBF, 0);
  using namespace pqe;
  const std::string metrics_out = obs::ConsumeMetricsOutFlag(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::printf(
      "E11 — counting-core hot path: cached vs legacy (single thread)\n"
      "==============================================================\n\n"
      "%s",
      smoke ? "smoke mode: two smallest cells per sweep\n\n" : "\n");
  // Smoke keeps the full run's per-stratum pool (96) for the E4 sweep: the
  // width-3 oracle cell gates accuracy against the exact answer, and below
  // ~64 pool entries the estimator does not concentrate inside the ε band
  // for most seeds — the check would gate on seed luck, not correctness.
  // Smoke's cost saving comes from capping the width at 3.
  SweepDataScaling(smoke ? 3 : 7, smoke ? 96 : 0);
  SweepQueryScaling(smoke ? 3 : 7, smoke ? 24 : 0);
  std::printf("determinism: every cell's cached estimate matched the legacy "
              "estimate bit for bit\n");
  if (!metrics_out.empty()) {
    Status status = obs::WriteMetricsJsonFile(metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "--metrics_out: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}
