// E8 — Head-to-head with the classical intensional approach (Section 1,
// Corollary 1): our combined FPRAS vs Karp–Luby over the DNF lineage vs the
// exact Shannon-expansion oracle, as the query length grows on a fixed data
// shape. Expected crossover: lineage-based methods degrade exponentially
// with query length (clause count multiplies per atom) while PQEEstimate
// grows polynomially.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pqe.h"
#include "cq/builders.h"
#include "lineage/karp_luby.h"
#include "lineage/monte_carlo.h"
#include "lineage/lineage.h"
#include "util/check.h"
#include "workload/generators.h"

namespace pqe {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace
}  // namespace pqe

int main() {
  setvbuf(stdout, nullptr, _IONBF, 0);
  using namespace pqe;
  std::printf(
      "E8 — PQEEstimate (combined FPRAS) vs lineage-based baselines\n"
      "============================================================\n\n"
      "Layered graph, width 4 per layer, complete joins; query length "
      "sweep.\n\n");
  std::printf("%-4s %-6s %-10s %-12s %-12s %-12s %-12s %-10s %-10s %-12s\n",
              "i", "|D|", "clauses", "fpras(ms)", "fpras P", "KL(ms)",
              "KL P", "MC(ms)", "MC P", "exactDNF(ms)");
  EstimatorConfig cfg;
  cfg.epsilon = 0.25;
  cfg.seed = 17;
  cfg.pool_size = 160;
  cfg.repetitions = 3;  // median-of-3 keeps single-run variance in check
  for (uint32_t i = 2; i <= 7; ++i) {
    auto qi = MakePathQuery(i).MoveValue();
    LayeredGraphOptions opt;
    opt.width = 4;
    opt.density = 1.0;
    opt.seed = 2;
    auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
    ProbabilityModel pm;
    pm.max_denominator = 8;
    pm.seed = i;
    ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

    auto t0 = std::chrono::steady_clock::now();
    auto est = PqeEstimate(qi.query, pdb, cfg).MoveValue();
    const double fpras_ms = MillisSince(t0);

    // Naive Monte Carlo (unbiased, additive accuracy only).
    MonteCarloConfig mcc;
    mcc.seed = 31;
    mcc.num_samples = 20'000;
    t0 = std::chrono::steady_clock::now();
    auto mc = MonteCarloPqe(qi.query, pdb, mcc).MoveValue();
    const double mc_ms = MillisSince(t0);

    // Lineage-based baselines (construction cost included — that is the
    // point of the comparison).
    t0 = std::chrono::steady_clock::now();
    auto lineage = BuildLineage(qi.query, pdb.database(), 2'000'000);
    double kl_ms = -1.0, kl_p = -1.0, exact_ms = -1.0;
    size_t clauses = 0;
    if (lineage.ok()) {
      clauses = lineage->NumClauses();
      KarpLubyConfig klc;
      klc.epsilon = 0.25;
      klc.seed = 29;
      klc.max_samples = 50'000;
      auto kl = KarpLubyEstimate(*lineage, pdb, klc).MoveValue();
      kl_ms = MillisSince(t0);
      kl_p = kl.probability;
      if (clauses <= 5000) {
        t0 = std::chrono::steady_clock::now();
        auto exact = ExactDnfProbability(*lineage, pdb, 600'000);
        exact_ms = exact.ok() ? MillisSince(t0) : -1.0;
      }
    }
    char kl_ms_s[32], kl_p_s[32], ex_s[32], cl_s[32];
    std::snprintf(cl_s, sizeof(cl_s), "%zu", clauses);
    if (kl_ms < 0) {
      std::snprintf(kl_ms_s, sizeof(kl_ms_s), "blowup");
      std::snprintf(kl_p_s, sizeof(kl_p_s), "-");
      std::snprintf(cl_s, sizeof(cl_s), ">2e6");
    } else {
      std::snprintf(kl_ms_s, sizeof(kl_ms_s), "%.1f", kl_ms);
      std::snprintf(kl_p_s, sizeof(kl_p_s), "%.5f", kl_p);
    }
    if (exact_ms < 0) {
      std::snprintf(ex_s, sizeof(ex_s), "-");
    } else {
      std::snprintf(ex_s, sizeof(ex_s), "%.1f", exact_ms);
    }
    std::printf(
        "%-4u %-6zu %-10s %-12.1f %-12.5f %-12s %-12s %-10.1f %-10.5f "
        "%-12s\n",
        i, pdb.NumFacts(), cl_s, fpras_ms, est.probability, kl_ms_s, kl_p_s,
        mc_ms, mc.probability, ex_s);
  }
  std::printf(
      "\n  shape check: Karp-Luby's cost multiplies with the clause count\n"
      "  (≈4x per extra atom here) and eventually blows past the lineage\n"
      "  cap; PQEEstimate's cost grows polynomially with i and its estimate\n"
      "  stays consistent with the baselines where both are available.\n");
  return 0;
}
