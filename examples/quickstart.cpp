// Quickstart: build a tiny tuple-independent probabilistic database, parse a
// conjunctive query, and evaluate its probability with the engine — which
// picks the paper's combined FPRAS, an exact safe plan, or enumeration as
// appropriate.
//
//   $ ./quickstart

#include <cstdio>

#include "core/engine.h"
#include "cq/parser.h"
#include "pdb/probabilistic_database.h"
#include "util/check.h"

int main() {
  using namespace pqe;

  // 1. Schema and query. "Follows" and "Likes" might come from a noisy
  //    social-graph extraction pipeline.
  Schema schema;
  PQE_CHECK_OK(schema.AddRelation("Follows", 2).status());
  PQE_CHECK_OK(schema.AddRelation("Likes", 2).status());
  auto query_or = ParseQuery(schema, "Follows(x,y), Likes(y,z)");
  PQE_CHECK(query_or.ok());
  ConjunctiveQuery query = query_or.MoveValue();
  std::printf("query: %s\n", query.ToString(schema).c_str());
  std::printf("  self-join-free: %s, hierarchical (safe): %s\n",
              query.IsSelfJoinFree() ? "yes" : "no",
              query.IsHierarchical() ? "yes" : "no");

  // 2. Facts with independent probabilities (rational labels, as in the
  //    paper's model).
  Database db(schema);
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  PQE_CHECK(pdb.AddFact("Follows", {"ann", "bob"}, Probability{9, 10}).ok());
  PQE_CHECK(pdb.AddFact("Follows", {"ann", "cat"}, Probability{1, 2}).ok());
  PQE_CHECK(pdb.AddFact("Likes", {"bob", "jazz"}, Probability{3, 4}).ok());
  PQE_CHECK(pdb.AddFact("Likes", {"cat", "jazz"}, Probability{1, 3}).ok());
  PQE_CHECK(pdb.AddFact("Likes", {"cat", "rock"}, Probability{2, 3}).ok());
  std::printf("database: %zu facts, common denominator d = %s\n",
              pdb.NumFacts(), pdb.CommonDenominator().ToDecimalString().c_str());

  // 3. Evaluate. kAuto picks the best strategy; force kFpras to exercise the
  //    paper's Theorem 1 pipeline end to end.
  PqeEngine auto_engine;
  EvalResponse answer =
      auto_engine.EvaluateRequest(EvalRequest::ForQuery(query, pdb));
  PQE_CHECK(answer.status.ok());
  std::printf("\nauto:  Pr(Q) = %.6f  [%s%s]\n", answer.answer.probability,
              PqeMethodToString(answer.answer.method_used),
              answer.answer.is_exact ? ", exact" : "");

  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kFpras)
                  .Epsilon(0.1)
                  .Build();
  PQE_CHECK(opts.ok());
  PqeEngine fpras_engine(*opts);
  EvalResponse fpras =
      fpras_engine.EvaluateRequest(EvalRequest::ForQuery(query, pdb));
  PQE_CHECK(fpras.status.ok());
  std::printf("fpras: Pr(Q) ~ %.6f  [%s]\n", fpras.answer.probability,
              RenderDiagnostics(fpras.answer).c_str());
  return 0;
}
