// Posterior world sampling: "given that the query DID hold, what did the
// world probably look like?" The counting pools of the Theorem 1 automaton
// double as a sampler for Pr_H(D' | D' ⊨ Q) — useful for explanation and
// debugging of probabilistic data. We diagnose which hop of a flaky pipeline
// was most likely present given that a delivery happened.
//
//   $ ./posterior_sampling

#include <cstdio>
#include <vector>

#include "core/sampling.h"
#include "cq/builders.h"
#include "pdb/probabilistic_database.h"
#include "util/check.h"

int main() {
  using namespace pqe;

  // A 2-hop pipeline with redundant links; the middle machine "m2" is flaky.
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  PQE_CHECK(pdb.AddFact("R1", {"src", "m1"}, Probability{9, 10}).ok());
  PQE_CHECK(pdb.AddFact("R1", {"src", "m2"}, Probability{9, 10}).ok());
  PQE_CHECK(pdb.AddFact("R2", {"m1", "dst"}, Probability{1, 10}).ok());
  PQE_CHECK(pdb.AddFact("R2", {"m2", "dst"}, Probability{6, 10}).ok());
  std::printf("query: %s\n", qi.query.ToString(qi.schema).c_str());
  std::printf("prior link probabilities: 0.9, 0.9, 0.1, 0.6\n\n");

  EstimatorConfig cfg;
  cfg.epsilon = 0.1;
  cfg.seed = 17;
  const size_t kSamples = 4000;
  auto posterior =
      SampleConditionedWorlds(qi.query, pdb, cfg, kSamples).MoveValue();
  PQE_CHECK(!posterior.worlds.empty());

  std::vector<size_t> present(posterior.projected_db.NumFacts(), 0);
  for (const auto& world : posterior.worlds) {
    for (size_t f = 0; f < world.size(); ++f) {
      if (world[f]) ++present[f];
    }
  }
  std::printf("posterior link marginals given \"delivery happened\" (%zu "
              "samples):\n",
              posterior.worlds.size());
  for (FactId f = 0; f < posterior.projected_db.NumFacts(); ++f) {
    std::printf("  %-14s prior %.2f -> posterior ~%.2f\n",
                posterior.projected_db.FactToString(f).c_str(),
                pdb.probability(posterior.original_fact[f]).ToDouble(),
                static_cast<double>(present[f]) /
                    static_cast<double>(posterior.worlds.size()));
  }
  std::printf(
      "\n  reading: conditioning on success pulls the m2 route's links up\n"
      "  (it is the plausible path) while the m1->dst link stays unlikely —\n"
      "  evidence flows backwards through the query, at FPRAS cost.\n");
  return 0;
}
