// Sensor network reliability: a multi-hop relay network whose links are
// observed by noisy sensors. Each hop between relay tiers is a fact with an
// estimated reliability; "can a message travel source → sink?" is a path
// query — exactly the 3Path class the paper proves #P-hard to evaluate
// exactly yet easy to approximate (Corollary 1).
//
//   $ ./sensor_network [hops] [relays_per_tier]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/path_pqe.h"
#include "cq/builders.h"
#include "lineage/karp_luby.h"
#include "lineage/lineage.h"
#include "pdb/probabilistic_database.h"
#include "util/check.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace pqe;
  const uint32_t hops = argc > 1 ? std::atoi(argv[1]) : 4;
  const uint32_t relays = argc > 2 ? std::atoi(argv[2]) : 2;
  PQE_CHECK(hops >= 1 && relays >= 1);

  // Query: Hop1(x1,x2), ..., Hop_hops(x_hops, x_hops+1).
  auto qi = MakePathQuery(hops).MoveValue();
  std::printf("network: %u hops, %u relays per tier\n", hops, relays);
  std::printf("query:   %s\n\n", qi.query.ToString(qi.schema).c_str());

  // Data: complete links between adjacent tiers, each with a link quality
  // estimated from sensor readings (rational labels with denominator 100).
  Database db(qi.schema);
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  Rng rng(1234);
  for (uint32_t hop = 0; hop < hops; ++hop) {
    const std::string rel = "R" + std::to_string(hop + 1);
    for (uint32_t a = 0; a < relays; ++a) {
      for (uint32_t b = 0; b < relays; ++b) {
        const uint64_t quality = 55 + rng.NextBounded(43);  // 55%..97%
        PQE_CHECK(pdb.AddFact(rel,
                              {"t" + std::to_string(hop) + "_" +
                                   std::to_string(a),
                               "t" + std::to_string(hop + 1) + "_" +
                                   std::to_string(b)},
                              Probability{quality, 100})
                      .ok());
      }
    }
  }
  std::printf("facts:   %zu probabilistic links\n", pdb.NumFacts());

  // The lineage view: how large would the classical intensional DNF be?
  auto lineage = BuildLineage(qi.query, pdb.database(), 2'000'000);
  if (lineage.ok()) {
    std::printf("lineage: %zu clauses (grows as relays^(hops+1))\n",
                lineage->NumClauses());
  } else {
    std::printf("lineage: exceeds 2e6 clauses — intensional approach off "
                "the table\n");
  }

  // The paper's FPRAS, string specialization for path queries (Section 3 +
  // string-side multiplier gadgets): polynomial in hops AND network size.
  EstimatorConfig cfg;
  cfg.epsilon = 0.15;
  cfg.seed = 99;
  cfg.pool_size = 1024;   // practical-quality knob (see README caveats)
  cfg.repetitions = 3;    // median-of-3 amplification
  auto est = PathPqeEstimate(qi.query, pdb, cfg);
  PQE_CHECK(est.ok());
  std::printf("\nPQEEstimate: end-to-end delivery probability ~ %.4f\n",
              est->probability);
  std::printf("  automaton: %zu states, %zu transitions, word length k=%zu\n",
              est->nfa_states, est->nfa_transitions, est->word_length);
  std::printf("  estimator: %s\n", est->stats.ToString().c_str());

  // Cross-check with Karp–Luby when the lineage is still tractable.
  if (lineage.ok() && lineage->NumClauses() < 100'000) {
    KarpLubyConfig klc;
    klc.epsilon = 0.1;
    klc.seed = 7;
    auto kl = KarpLubyEstimate(*lineage, pdb, klc);
    PQE_CHECK(kl.ok());
    std::printf("\nKarp-Luby (lineage baseline): ~ %.4f  (%zu samples over "
                "%zu clauses)\n",
                kl->probability, kl->samples, kl->clauses);
  }
  return 0;
}
