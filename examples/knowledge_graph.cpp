// Knowledge-graph querying under extraction uncertainty: facts extracted
// from text by an imperfect NLP system carry confidence scores (the paper's
// opening motivation). We ask both a *safe* star query (answered exactly by
// the extensional plan) and an *unsafe* chain query (answered by the
// combined FPRAS) over the same probabilistic knowledge base.
//
//   $ ./knowledge_graph

#include <cstdio>

#include "core/engine.h"
#include "cq/parser.h"
#include "pdb/probabilistic_database.h"
#include "safeplan/safe_plan.h"
#include "util/check.h"

int main() {
  using namespace pqe;

  Schema schema;
  PQE_CHECK_OK(schema.AddRelation("WorksAt", 2).status());
  PQE_CHECK_OK(schema.AddRelation("LocatedIn", 2).status());
  PQE_CHECK_OK(schema.AddRelation("Capital", 1).status());
  PQE_CHECK_OK(schema.AddRelation("Knows", 2).status());
  PQE_CHECK_OK(schema.AddRelation("AuthorOf", 2).status());

  Database db(schema);
  ProbabilisticDatabase kb = ProbabilisticDatabase::Uniform(std::move(db));
  // Extraction confidences as rationals out of 100.
  struct Triple {
    const char* rel;
    const char* s;
    const char* o;
    uint64_t conf;
  };
  const Triple triples[] = {
      {"WorksAt", "alice", "acme", 92},    {"WorksAt", "bob", "acme", 75},
      {"WorksAt", "carol", "globex", 88},  {"WorksAt", "dave", "globex", 40},
      {"LocatedIn", "acme", "paris", 95},  {"LocatedIn", "globex", "berlin", 85},
      {"LocatedIn", "acme", "lyon", 20},   {"Knows", "alice", "bob", 60},
      {"Knows", "bob", "carol", 55},       {"Knows", "carol", "dave", 70},
      {"AuthorOf", "alice", "paper1", 90}, {"AuthorOf", "carol", "paper2", 80},
  };
  for (const Triple& t : triples) {
    PQE_CHECK(kb.AddFact(t.rel, {t.s, t.o}, Probability{t.conf, 100}).ok());
  }
  const char* capitals[] = {"paris", "berlin"};
  for (const char* c : capitals) {
    PQE_CHECK(kb.AddFact("Capital", {c}, Probability{99, 100}).ok());
  }
  std::printf("knowledge base: %zu uncertain facts\n\n", kb.NumFacts());

  PqeEngine engine;

  // Q1 (safe, hierarchical): does anyone work somewhere and author a paper?
  //    WorksAt(p, c), AuthorOf(p, d) — a star around p.
  auto q1 = ParseQuery(schema, "WorksAt(p,c), AuthorOf(p,d)").MoveValue();
  PQE_CHECK(IsSafeQuery(q1));
  EvalResponse a1 = engine.EvaluateRequest(EvalRequest::ForQuery(q1, kb));
  PQE_CHECK(a1.status.ok());
  std::printf("Q1 (safe star)   %s\n  Pr = %.6f via %s (exact)\n\n",
              q1.ToString(schema).c_str(), a1.answer.probability,
              PqeMethodToString(a1.answer.method_used));

  // Q2 (unsafe chain, the paper's hard case): is some employee of a company
  //    located in a capital city?
  //    WorksAt(p, c), LocatedIn(c, t), Capital(t) — non-hierarchical.
  auto q2 =
      ParseQuery(schema, "WorksAt(p,c), LocatedIn(c,t), Capital(t)")
          .MoveValue();
  PQE_CHECK(!q2.IsHierarchical());
  auto fopts = PqeEngine::Options::Builder()
                   .Method(PqeMethod::kFpras)
                   .Epsilon(0.1)
                   .Seed(11)
                   .Build();
  PQE_CHECK(fopts.ok());
  PqeEngine fpras(*fopts);
  EvalResponse a2 = fpras.EvaluateRequest(EvalRequest::ForQuery(q2, kb));
  PQE_CHECK(a2.status.ok());
  std::printf("Q2 (unsafe chain) %s\n  Pr ~ %.6f via %s\n  %s\n\n",
              q2.ToString(schema).c_str(), a2.answer.probability,
              PqeMethodToString(a2.answer.method_used),
              RenderDiagnostics(a2.answer).c_str());

  // Cross-check Q2 against exact lineage counting (feasible at this scale).
  auto xopts =
      PqeEngine::Options::Builder().Method(PqeMethod::kExactLineage).Build();
  PQE_CHECK(xopts.ok());
  PqeEngine exact(*xopts);
  EvalResponse a3 = exact.EvaluateRequest(EvalRequest::ForQuery(q2, kb));
  PQE_CHECK(a3.status.ok());
  std::printf("Q2 exact cross-check: Pr = %.6f via %s\n", a3.answer.probability,
              PqeMethodToString(a3.answer.method_used));
  return 0;
}
