// Uniform reliability audit: "out of all 2^|D| possible subsets of our
// config/links, how many still satisfy the requirement?" — the uniform
// reliability problem UR(Q, D) (Section 4 / Amarilli & Kimelfeld). We count
// satisfying subinstances with the Proposition 1 automaton, both exactly
// (small instances) and with the Theorem 3 FPRAS.
//
//   $ ./reliability_audit

#include <cstdio>

#include "core/ur_construction.h"
#include "cq/builders.h"
#include "eval/eval.h"
#include "util/check.h"
#include "workload/generators.h"

int main() {
  using namespace pqe;

  // Requirement: a working ingest → transform → publish pipeline, modeled
  // as the path query R1(x1,x2), R2(x2,x3), R3(x3,x4) over deployable links.
  auto qi = MakePathQuery(3).MoveValue();
  std::printf("requirement: %s\n\n", qi.query.ToString(qi.schema).c_str());

  // Small audit: exact count, verified two independent ways.
  {
    LayeredGraphOptions opt;
    opt.width = 2;
    opt.density = 0.9;
    opt.seed = 3;
    auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
    auto brute = UniformReliabilityByEnumeration(db, qi.query).MoveValue();
    auto automaton = UrExactViaAutomaton(qi.query, db).MoveValue();
    BigUint worlds = BigUint::PowerOfTwo(db.NumFacts());
    std::printf("small audit (|D|=%zu):\n", db.NumFacts());
    std::printf("  satisfying configurations: %s of %s\n",
                brute.ToDecimalString().c_str(),
                worlds.ToDecimalString().c_str());
    std::printf("  via Prop. 1 tree automaton: %s  (exact match: %s)\n\n",
                automaton.ToDecimalString().c_str(),
                brute == automaton ? "yes" : "NO");
  }

  // Large audit: 2^|D| is astronomical; the FPRAS still answers.
  {
    LayeredGraphOptions opt;
    opt.width = 5;
    opt.density = 0.6;
    opt.seed = 8;
    auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
    EstimatorConfig cfg;
    cfg.epsilon = 0.2;
    cfg.seed = 21;
    auto est = UrEstimate(qi.query, db, cfg);
    PQE_CHECK(est.ok());
    std::printf("large audit (|D|=%zu, 2^%zu worlds):\n", db.NumFacts(),
                db.NumFacts());
    std::printf("  UR estimate ~ %s satisfying configurations\n",
                est->ur.ToString().c_str());
    std::printf("  fraction of all worlds ~ %.4f\n",
                est->ur.Div(ExtFloat::FromBigUint(
                                BigUint::PowerOfTwo(db.NumFacts())))
                    .ToDouble());
    std::printf("  automaton: %zu states, %zu transitions, width %zu; %s\n",
                est->nfta_states, est->nfta_transitions,
                est->decomposition_width, est->stats.ToString().c_str());
  }
  return 0;
}
