#!/usr/bin/env bash
# CI entry point: tier-1 verify (default build + full test suite), the
# tracing-disabled configuration, an ASan/UBSan pass, and a TSan pass with
# the parallel sampling layers forced multi-threaded.
#
#   ./ci.sh            # all five configurations
#   ./ci.sh tier1      # just the tier-1 verify
#   ./ci.sh notrace    # just PQE_ENABLE_TRACING=OFF
#   ./ci.sh sanitize   # just ASan/UBSan
#   ./ci.sh tsan       # just ThreadSanitizer (PQE_THREADS=8)
#   ./ci.sh perf_smoke # just the counting hot-path perf smoke

set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "==== ${name}: configure (${dir}) ===="
  cmake -B "${dir}" -S . "$@"
  echo "==== ${name}: build ===="
  cmake --build "${dir}" -j "${JOBS}"
  echo "==== ${name}: ctest ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

tier1() {
  run_config "tier-1" build
}

notrace() {
  run_config "no-tracing" build-notrace -DPQE_ENABLE_TRACING=OFF
}

sanitize() {
  # Benchmarks are excluded: google-benchmark is not built with sanitizers
  # here and the point is to scrub the library + tests.
  run_config "asan/ubsan" build-asan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPQE_BUILD_BENCHMARKS=OFF \
    -DPQE_BUILD_EXAMPLES=OFF \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
}

tsan() {
  # Scrub the fork/join pool and the parallel rep/shard loops for data
  # races. PQE_THREADS=8 makes every num_threads=0 (auto) config fan out,
  # so the whole suite — not just the determinism tests — runs threaded;
  # the determinism contract keeps all expected values unchanged.
  (
    export PQE_THREADS=8
    run_config "tsan" build-tsan \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPQE_BUILD_BENCHMARKS=OFF \
      -DPQE_BUILD_EXAMPLES=OFF \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  )
}

perf_smoke() {
  # Smoke the counting hot-path bench: it must complete (every cell asserts
  # the cached estimate is bit-identical to the legacy one) and emit
  # parseable metrics JSON.
  echo "==== perf-smoke: build bench_counting_hotpath ===="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target bench_counting_hotpath
  echo "==== perf-smoke: run ===="
  local out="build/BENCH_counting_hotpath.smoke.json"
  ./build/bench/bench_counting_hotpath --smoke --metrics_out="${out}"
  echo "==== perf-smoke: validate ${out} ===="
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${out}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
gauges = doc.get("metrics", doc).get("gauges", {})
cells = [k for k in gauges if "counting_hotpath" in k and k.endswith(".speedup")]
assert cells, "no counting_hotpath speedup gauges in metrics JSON"
print(f"perf-smoke: {len(cells)} cells, JSON OK")
EOF
  else
    grep -q "counting_hotpath" "${out}"
    echo "perf-smoke: JSON contains counting_hotpath gauges (python3 absent)"
  fi
}

if [[ $# -eq 0 ]]; then
  tier1
  notrace
  sanitize
  tsan
  perf_smoke
else
  for target in "$@"; do
    "${target}"
  done
fi
echo "==== ci.sh: all requested configurations passed ===="
