#!/usr/bin/env bash
# CI entry point: tier-1 verify (default build + full test suite), the
# tracing-disabled configuration, an ASan/UBSan pass, and a TSan pass with
# the parallel sampling layers forced multi-threaded.
#
#   ./ci.sh            # all configurations
#   ./ci.sh tier1      # just the tier-1 verify
#   ./ci.sh notrace    # just PQE_ENABLE_TRACING=OFF
#   ./ci.sh sanitize   # just ASan/UBSan
#   ./ci.sh tsan       # just ThreadSanitizer (PQE_THREADS=8)
#   ./ci.sh serve_smoke # batch serving CLI under TSan (PQE_THREADS=8)
#   ./ci.sh faultsim   # deterministic fault-injection sweep under TSan
#   ./ci.sh perf_smoke # counting hot-path + serving perf smokes
#   ./ci.sh bench_gate # perf-regression gate vs committed BENCH_*.json

set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1" dir="$2"
  shift 2
  echo "==== ${name}: configure (${dir}) ===="
  cmake -B "${dir}" -S . "$@"
  echo "==== ${name}: build ===="
  cmake --build "${dir}" -j "${JOBS}"
  echo "==== ${name}: ctest ===="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

tier1() {
  run_config "tier-1" build
}

notrace() {
  run_config "no-tracing" build-notrace -DPQE_ENABLE_TRACING=OFF
}

sanitize() {
  # Benchmarks are excluded: google-benchmark is not built with sanitizers
  # here and the point is to scrub the library + tests.
  run_config "asan/ubsan" build-asan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DPQE_BUILD_BENCHMARKS=OFF \
    -DPQE_BUILD_EXAMPLES=OFF \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
}

tsan() {
  # Scrub the fork/join pool and the parallel rep/shard loops for data
  # races. PQE_THREADS=8 makes every num_threads=0 (auto) config fan out,
  # so the whole suite — not just the determinism tests — runs threaded;
  # the determinism contract keeps all expected values unchanged.
  (
    export PQE_THREADS=8
    run_config "tsan" build-tsan \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPQE_BUILD_BENCHMARKS=OFF \
      -DPQE_BUILD_EXAMPLES=OFF \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  )
}

serve_smoke() {
  # Drive the serving layer end to end under ThreadSanitizer: the batch CLI
  # fans requests across 8 threads, shares cached prepared queries between
  # them, and enforces per-request deadlines. Deadline-capped requests must
  # come back as typed DEADLINE_EXCEEDED rows, not hangs or races.
  (
    export PQE_THREADS=8
    echo "==== serve-smoke: build pqe_cli (tsan) ===="
    cmake -B build-tsan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPQE_BUILD_BENCHMARKS=OFF \
      -DPQE_BUILD_EXAMPLES=OFF \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
    cmake --build build-tsan -j "${JOBS}" --target pqe_cli
    local batch="build-tsan/serve_smoke.queries"
    {
      # Repeated queries share one cached PreparedQuery across the batch
      # threads (each request still draws its own id-derived samples).
      for _ in 1 2 3 4; do
        echo "Follows(x,y), Likes(y,z)"
        echo "Follows(x,y), Likes(x,z)"
        echo "Likes(x,y)"
        # Regular path queries ride the same batch: a lowered linear chain
        # and a product-construction regex with repetition.
        echo "rpq: Follows/Likes"
        echo "rpq: Follows+/Likes"
      done
    } > "${batch}"
    echo "==== serve-smoke: batch with generous deadline ===="
    ./build-tsan/src/pqe_cli --data examples/data/social.facts \
      --server-batch "${batch}" --method fpras --deadline-ms 60000
    echo "==== serve-smoke: tight deadline yields typed rows, never hangs ===="
    local out
    out="$(./build-tsan/src/pqe_cli --data examples/data/social.facts \
      --server-batch "${batch}" --method fpras --deadline-ms 1)" || {
      echo "serve-smoke: deadline batch exited non-zero"; exit 1; }
    echo "${out}"
    # Every row is either an answer or a typed deadline status — whichever
    # the 1ms budget allows on this machine; ERROR rows exit non-zero above.
    echo "${out}" | grep -Eq "Pr\(Q\)|DEADLINE_EXCEEDED" \
      || { echo "serve-smoke: expected answered or deadline rows"; exit 1; }
  )
}

faultsim() {
  # Sweep the deterministic fault-injection harness over a fixed band of
  # seeds, under ThreadSanitizer: every seed's schedule injects crashes,
  # drops, and delays between the router and the shards, and the harness
  # fails the seed unless the surviving answers are bit-identical to the
  # unfaulted run AND a re-run of the seed reproduces the exact outcome
  # vector. A failing seed prints as `pqe_cli --faultsim-seed N` — an exact
  # local repro, never a flake.
  (
    export PQE_THREADS=8
    echo "==== faultsim: build pqe_cli (tsan) ===="
    cmake -B build-tsan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DPQE_BUILD_BENCHMARKS=OFF \
      -DPQE_BUILD_EXAMPLES=OFF \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
    cmake --build build-tsan -j "${JOBS}" --target pqe_cli
    echo "==== faultsim: sweep seeds 1..8 ===="
    ./build-tsan/src/pqe_cli --faultsim-sweep 8
  )
}

perf_smoke() {
  # Smoke the perf benches: each must complete (their cells assert
  # bit-identity internally) and emit parseable metrics JSON.
  echo "==== perf-smoke: build bench_counting_hotpath + bench_serving + bench_serving_updates + bench_sharded_serving + bench_rpq ===="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" \
    --target bench_counting_hotpath bench_serving bench_serving_updates \
    bench_sharded_serving bench_rpq
  echo "==== perf-smoke: run ===="
  local out="build/BENCH_counting_hotpath.smoke.json"
  local serve_out="build/BENCH_serving.smoke.json"
  local update_out="build/BENCH_serving_updates.smoke.json"
  local shard_out="build/BENCH_sharded_serving.smoke.json"
  local rpq_out="build/BENCH_rpq.smoke.json"
  ./build/bench/bench_counting_hotpath --smoke --metrics_out="${out}"
  ./build/bench/bench_serving --smoke --metrics_out="${serve_out}"
  ./build/bench/bench_serving_updates --smoke --metrics_out="${update_out}"
  # The sharded bench asserts internally that every routed answer is
  # bit-identical to the single-service run and that the fault-injection
  # harness seeds pass (survivors identical, replay exact).
  ./build/bench/bench_sharded_serving --smoke --metrics_out="${shard_out}"
  # The RPQ bench asserts lowered-regex answers are bit-identical to the
  # path route and warm served RPQ answers to cold engine answers.
  ./build/bench/bench_rpq --smoke --metrics_out="${rpq_out}"
  echo "==== perf-smoke: validate ${out} + ${serve_out} + ${update_out} + ${shard_out} + ${rpq_out} ===="
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${out}" "${serve_out}" "${update_out}" "${shard_out}" "${rpq_out}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
gauges = doc.get("metrics", doc).get("gauges", {})
cells = [k for k in gauges if "counting_hotpath" in k and k.endswith(".speedup")]
assert cells, "no counting_hotpath speedup gauges in metrics JSON"
fast = [k for k in gauges if "counting_hotpath" in k and k.endswith(".fast_speedup")]
assert fast, "no counting_hotpath fast_speedup gauges in metrics JSON (fast-kernels cell missing)"
with open(sys.argv[2]) as f:
    doc = json.load(f)
gauges = doc.get("metrics", doc).get("gauges", {})
serving = [k for k in gauges if "bench.serving" in k and k.endswith(".speedup_warm")]
assert serving, "no serving speedup gauges in metrics JSON"
with open(sys.argv[3]) as f:
    doc = json.load(f)
gauges = doc.get("metrics", doc).get("gauges", {})
updates = [k for k in gauges
           if "serving_updates" in k and k.endswith(".speedup_delta_rebind")]
assert updates, "no serving_updates speedup_delta_rebind gauges in metrics JSON"
assert any(k.endswith("path.speedup_delta_rebind") and gauges[k] >= 10.0
           for k in updates), "path delta-rebind speedup below the 10x gate"
with open(sys.argv[4]) as f:
    doc = json.load(f)
gauges = doc.get("metrics", doc).get("gauges", {})
sharded = [k for k in gauges
           if "sharded_serving" in k and k.endswith(".speedup_overhead")]
assert sharded, "no sharded_serving speedup_overhead gauges in metrics JSON"
counters = doc.get("metrics", doc).get("counters", {})
assert counters.get("pqe.bench.sharded_serving.faultsim.seeds_ok", 0) > 0, \
    "sharded_serving bench ran no faultsim seeds"
with open(sys.argv[5]) as f:
    doc = json.load(f)
gauges = doc.get("metrics", doc).get("gauges", {})
assert gauges.get("pqe.bench.rpq.linear.w3.parity", 0) == 1.0, \
    "rpq bench reported no lowering parity gauge"
rpq = [k for k in gauges if "bench.rpq" in k and k.endswith(".speedup_warm")]
assert rpq, "no rpq serving speedup gauges in metrics JSON"
print(f"perf-smoke: {len(cells)} hotpath ({len(fast)} fast-kernel) + {len(serving)} serving + {len(updates)} update + {len(sharded)} sharded + {len(rpq)} rpq cells, JSON OK")
EOF
  else
    grep -q "counting_hotpath" "${out}"
    grep -q "bench.serving" "${serve_out}"
    grep -q "serving_updates" "${update_out}"
    grep -q "sharded_serving" "${shard_out}"
    grep -q "bench.rpq" "${rpq_out}"
    echo "perf-smoke: JSON contains expected gauges (python3 absent)"
  fi
}

bench_gate() {
  # Perf-regression gate: run the smoke benches and diff their speedup
  # gauges against the committed baselines with bench_compare; any gauge
  # more than 25% below its baseline fails the stage. Only speedup gauges
  # (ratios within one run) are gated — raw millisecond gauges vary too
  # much across machines. The sanitizer configurations never run this
  # stage (they build with PQE_BUILD_BENCHMARKS=OFF; instrumented timings
  # are meaningless); set PQE_BENCH_GATE_ADVISORY=1 to print the
  # comparison without failing on other noisy machines.
  echo "==== bench-gate: build ===="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" \
    --target bench_counting_hotpath bench_serving bench_serving_updates \
    bench_replay bench_sharded_serving bench_rpq bench_compare
  local adv=""
  [[ "${PQE_BENCH_GATE_ADVISORY:-0}" != "0" ]] && adv="--advisory"
  echo "==== bench-gate: run smoke benches ===="
  ./build/bench/bench_counting_hotpath --smoke \
    --metrics_out=build/bench_gate_hotpath.json
  ./build/bench/bench_serving --smoke \
    --metrics_out=build/bench_gate_serving.json
  # The update bench gates itself too: >= 10x path delta rebind and
  # bit-identity of every delta-rebound answer, in both kernel modes.
  ./build/bench/bench_serving_updates --smoke \
    --metrics_out=build/bench_gate_serving_updates.json
  # The replay bench is its own gate: it asserts every replayed answer
  # matches its capture bit for bit.
  ./build/bench/bench_replay --smoke
  # The sharded bench gates routed-vs-single bit-identity and the faultsim
  # contract internally; its routing-overhead ratio is gated below.
  ./build/bench/bench_sharded_serving --smoke \
    --metrics_out=build/bench_gate_sharded_serving.json
  # The RPQ bench asserts lowering parity and warm/cold bit-identity
  # internally; its serving speedup is gated below.
  ./build/bench/bench_rpq --smoke --metrics_out=build/bench_gate_rpq.json
  echo "==== bench-gate: compare against committed baselines ===="
  ./build/src/bench_compare --baseline BENCH_counting_hotpath.smoke.json \
    --fresh build/bench_gate_hotpath.json ${adv}
  ./build/src/bench_compare --baseline BENCH_serving.json \
    --fresh build/bench_gate_serving.json ${adv}
  ./build/src/bench_compare --baseline BENCH_serving_updates.json \
    --fresh build/bench_gate_serving_updates.json ${adv}
  ./build/src/bench_compare --baseline BENCH_sharded_serving.json \
    --fresh build/bench_gate_sharded_serving.json ${adv}
  ./build/src/bench_compare --baseline BENCH_rpq.json \
    --fresh build/bench_gate_rpq.json ${adv}
}

if [[ $# -eq 0 ]]; then
  tier1
  notrace
  sanitize
  tsan
  serve_smoke
  faultsim
  perf_smoke
  bench_gate
else
  for target in "$@"; do
    "${target}"
  done
fi
echo "==== ci.sh: all requested configurations passed ===="
