// Differential fuzzing: random self-join-free queries (random acyclic
// shapes plus occasional cycles) × random databases × random probability
// labels. Two independent exact evaluators must agree bit-for-bit:
//   (a) the Theorem 1 automaton pipeline with exact tree counting, and
//   (b) the lineage + decomposed model counter.
// This exercises interactions no hand-written case covers: re-rooting,
// binarization, λ-elimination, gadget padding, and witness-join indexing.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pqe.h"
#include "cq/query.h"
#include "eval/eval.h"
#include "lineage/compiled_wmc.h"
#include "lineage/lineage.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace {

struct RandomInstance {
  Schema schema;
  ConjunctiveQuery query;
  ProbabilisticDatabase pdb;
};

Result<RandomInstance> MakeRandomInstance(uint64_t seed) {
  Rng rng(seed);
  // Random connected self-join-free query: a spanning tree over variables
  // plus optional unary labels and one optional cycle-closing edge.
  const uint32_t num_vars = 2 + static_cast<uint32_t>(rng.NextBounded(4));
  Schema schema;
  std::vector<std::pair<std::string, std::vector<std::string>>> atoms;
  uint32_t rel = 0;
  auto var = [](uint32_t v) { return "v" + std::to_string(v); };
  for (uint32_t v = 1; v < num_vars; ++v) {
    const uint32_t parent = static_cast<uint32_t>(rng.NextBounded(v));
    atoms.push_back({"E" + std::to_string(rel++), {var(parent), var(v)}});
  }
  if (rng.NextBernoulli(0.4)) {
    atoms.push_back({"L" + std::to_string(rel++),
                     {var(static_cast<uint32_t>(rng.NextBounded(num_vars)))}});
  }
  if (num_vars >= 3 && rng.NextBernoulli(0.3)) {
    // Close a cycle (may push the width to 2).
    atoms.push_back({"C" + std::to_string(rel++),
                     {var(0), var(num_vars - 1)}});
  }
  for (const auto& [name, args] : atoms) {
    PQE_RETURN_IF_ERROR(
        schema.AddRelation(name, static_cast<uint32_t>(args.size()))
            .status());
  }
  ConjunctiveQuery::Builder builder(&schema);
  for (const auto& [name, args] : atoms) {
    PQE_RETURN_IF_ERROR(builder.AddAtom(name, args));
  }
  PQE_ASSIGN_OR_RETURN(ConjunctiveQuery query, builder.Build());

  RandomDatabaseOptions ropt;
  ropt.domain_size = 2 + static_cast<uint32_t>(rng.NextBounded(2));
  ropt.facts_per_relation = 2 + static_cast<uint32_t>(rng.NextBounded(2));
  ropt.seed = seed * 31 + 7;
  PQE_ASSIGN_OR_RETURN(Database db, MakeRandomDatabase(schema, ropt));
  ProbabilityModel pm;
  pm.kind = rng.NextBernoulli(0.5) ? ProbabilityModel::Kind::kRandomRational
                                   : ProbabilityModel::Kind::kSkewed;
  pm.max_denominator = 2 + rng.NextBounded(14);
  pm.seed = seed * 13 + 3;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  return RandomInstance{std::move(schema), std::move(query), std::move(pdb)};
}

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferential, AutomatonMatchesLineageExactly) {
  auto instance_or = MakeRandomInstance(GetParam());
  ASSERT_TRUE(instance_or.ok()) << instance_or.status().ToString();
  RandomInstance inst = instance_or.MoveValue();

  UrConstructionOptions opts;
  opts.max_width = 3;
  auto via_automaton = PqeExactViaAutomaton(inst.query, inst.pdb, opts);
  if (!via_automaton.ok()) {
    // Width budget or oracle budget exceeded is acceptable for a fuzz case;
    // anything else is a bug.
    ASSERT_TRUE(via_automaton.status().code() ==
                    StatusCode::kResourceExhausted ||
                via_automaton.status().code() == StatusCode::kNotSupported)
        << via_automaton.status().ToString();
    GTEST_SKIP() << via_automaton.status().ToString();
  }

  auto lineage = BuildLineage(inst.query, inst.pdb.database()).MoveValue();
  auto via_lineage =
      ExactDnfProbabilityDecomposed(lineage, inst.pdb).MoveValue();
  EXPECT_EQ(via_automaton->Compare(via_lineage.probability), 0)
      << "seed=" << GetParam() << ": "
      << via_automaton->Normalized().ToString() << " vs "
      << via_lineage.probability.Normalized().ToString() << " for "
      << inst.query.ToString(inst.schema);

  // And against brute force when small enough.
  if (inst.pdb.NumFacts() <= 12) {
    auto truth =
        ExactProbabilityByEnumeration(inst.pdb, inst.query).MoveValue();
    EXPECT_EQ(via_automaton->Compare(truth), 0) << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(1, 81));

}  // namespace
}  // namespace pqe
