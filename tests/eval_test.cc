// Unit tests for the eval module: query satisfaction, witnesses, and the
// exact possible-world oracles.

#include <gtest/gtest.h>

#include "cq/builders.h"
#include "cq/parser.h"
#include "eval/eval.h"
#include "pdb/probabilistic_database.h"

namespace pqe {
namespace {

struct PathFixture {
  QueryInstance qi = MakePathQuery(2).MoveValue();
  Database db{qi.schema};

  PathFixture() {
    EXPECT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
    EXPECT_TRUE(db.AddFactByName("R2", {"b", "c"}).ok());
    EXPECT_TRUE(db.AddFactByName("R2", {"x", "y"}).ok());
  }
};

TEST(SatisfiesTest, FindsChainedWitness) {
  PathFixture f;
  auto sat = Satisfies(f.db, f.qi.query);
  ASSERT_TRUE(sat.ok());
  EXPECT_TRUE(*sat);
}

TEST(SatisfiesTest, FailsWithoutJoin) {
  PathFixture f;
  Database db(f.qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"c", "d"}).ok());  // does not join
  EXPECT_FALSE(Satisfies(db, f.qi.query).value());
}

TEST(SatisfiesTest, SubinstanceRespectsPresence) {
  PathFixture f;
  EXPECT_TRUE(
      SatisfiesSubinstance(f.db, f.qi.query, {true, true, false}).value());
  EXPECT_FALSE(
      SatisfiesSubinstance(f.db, f.qi.query, {true, false, true}).value());
  EXPECT_FALSE(
      SatisfiesSubinstance(f.db, f.qi.query, {false, true, true}).value());
  // Wrong bitvector size is an error.
  EXPECT_FALSE(SatisfiesSubinstance(f.db, f.qi.query, {true}).ok());
}

TEST(SatisfiesTest, ValidatesSchemaCompatibility) {
  PathFixture f;
  Schema other;
  ASSERT_TRUE(other.AddRelation("R1", 2).ok());
  ASSERT_TRUE(other.AddRelation("R2", 2).ok());
  ASSERT_TRUE(other.AddRelation("R3", 2).ok());
  auto q3 = MakePathQuery(3).MoveValue();
  // Query over 3 relations, database schema has only 2.
  EXPECT_EQ(Satisfies(f.db, q3.query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WitnessTest, FindAndEnumerate) {
  PathFixture f;
  auto w = FindWitness(f.db, f.qi.query);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(w->found);
  // x1=a, x2=b, x3=c in some variable order.
  auto all = AllWitnesses(f.db, f.qi.query);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1u);
}

TEST(WitnessTest, CountsCrossProducts) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  // Two R1 edges into b, two R2 edges out of b: 4 witnesses.
  ASSERT_TRUE(db.AddFactByName("R1", {"a1", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R1", {"a2", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "c1"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "c2"}).ok());
  EXPECT_EQ(AllWitnesses(db, qi.query)->size(), 4u);
}

TEST(WitnessTest, RepeatedVariableInAtom) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  auto q = ParseQuery(schema, "E(x,x)");
  ASSERT_TRUE(q.ok());
  Database db(schema);
  ASSERT_TRUE(db.AddFactByName("E", {"a", "b"}).ok());
  EXPECT_FALSE(Satisfies(db, *q).value());
  ASSERT_TRUE(db.AddFactByName("E", {"c", "c"}).ok());
  EXPECT_TRUE(Satisfies(db, *q).value());
}

TEST(EnumerationTest, UniformReliabilityKnownValue) {
  // Single atom R1(x,y) with two facts: satisfying subsets are those
  // containing at least one fact: 2^2 - 1 = 3.
  auto qi = MakePathQuery(1).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R1", {"c", "d"}).ok());
  EXPECT_EQ(UniformReliabilityByEnumeration(db, qi.query)->ToDecimalString(),
            "3");
}

TEST(EnumerationTest, ChainKnownValue) {
  PathFixture f;
  // Satisfying subsets must contain facts 0 and 1; fact 2 free: 2 subsets.
  EXPECT_EQ(
      UniformReliabilityByEnumeration(f.db, f.qi.query)->ToDecimalString(),
      "2");
}

TEST(EnumerationTest, GuardsLargeDatabases) {
  PathFixture f;
  EXPECT_EQ(UniformReliabilityByEnumeration(f.db, f.qi.query, 2)
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

TEST(EnumerationTest, ExactProbabilityMatchesHandComputation) {
  PathFixture f;
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(f.db);
  ASSERT_TRUE(pdb.SetProbability(0, Probability{1, 2}).ok());
  ASSERT_TRUE(pdb.SetProbability(1, Probability{1, 3}).ok());
  ASSERT_TRUE(pdb.SetProbability(2, Probability{1, 5}).ok());
  // Query satisfied iff facts 0 and 1 both present: 1/2 * 1/3 = 1/6.
  auto p = ExactProbabilityByEnumeration(pdb, f.qi.query);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->Normalized().ToString(), "1/6");
}

TEST(EnumerationTest, EmptyDatabaseMeansZero) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  EXPECT_EQ(UniformReliabilityByEnumeration(db, qi.query)->ToDecimalString(),
            "0");
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(db);
  EXPECT_TRUE(ExactProbabilityByEnumeration(pdb, qi.query)->IsZero());
}

}  // namespace
}  // namespace pqe
