// Tests for the additional baselines: naive Monte Carlo and the
// decomposition-based exact model counter.

#include <gtest/gtest.h>

#include "cq/builders.h"
#include "eval/eval.h"
#include "lineage/compiled_wmc.h"
#include "lineage/karp_luby.h"
#include "lineage/lineage.h"
#include "lineage/monte_carlo.h"
#include "workload/generators.h"

namespace pqe {
namespace {

TEST(MonteCarloTest, ConvergesOnSmallInstance) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "c"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  ASSERT_TRUE(pdb.SetProbability(0, Probability{1, 2}).ok());
  ASSERT_TRUE(pdb.SetProbability(1, Probability{1, 3}).ok());
  MonteCarloConfig cfg;
  cfg.num_samples = 40'000;
  cfg.seed = 5;
  auto mc = MonteCarloPqe(qi.query, pdb, cfg).MoveValue();
  EXPECT_EQ(mc.samples, 40'000u);
  EXPECT_NEAR(mc.probability, 1.0 / 6.0, 0.01);
}

TEST(MonteCarloTest, ValidatesArguments) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  MonteCarloConfig cfg;
  cfg.num_samples = 0;
  EXPECT_FALSE(MonteCarloPqe(qi.query, pdb, cfg).ok());
}

TEST(MonteCarloTest, DeterministicForSeed) {
  auto qi = MakeH0Query().MoveValue();
  RandomDatabaseOptions ropt;
  ropt.seed = 2;
  auto db = MakeRandomDatabase(qi.schema, ropt).MoveValue();
  ProbabilityModel pm;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  MonteCarloConfig cfg;
  cfg.num_samples = 1000;
  cfg.seed = 9;
  auto a = MonteCarloPqe(qi.query, pdb, cfg).MoveValue();
  auto b = MonteCarloPqe(qi.query, pdb, cfg).MoveValue();
  EXPECT_EQ(a.hits, b.hits);
}

// ------------------------------------------- decomposition-based exact ----

class DecomposedWmcSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecomposedWmcSweep, AgreesWithShannonAndEnumeration) {
  const uint64_t seed = GetParam();
  auto qi = (seed % 2 == 0) ? MakePathQuery(3).MoveValue()
                            : MakeH0Query().MoveValue();
  RandomDatabaseOptions ropt;
  ropt.domain_size = 3;
  ropt.facts_per_relation = 4;
  ropt.seed = seed * 5 + 1;
  auto db = MakeRandomDatabase(qi.schema, ropt).MoveValue();
  if (db.NumFacts() > 14) GTEST_SKIP();
  ProbabilityModel pm;
  pm.seed = seed * 3 + 2;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  auto lineage = BuildLineage(qi.query, pdb.database()).MoveValue();
  auto shannon = ExactDnfProbability(lineage, pdb).MoveValue();
  auto decomposed = ExactDnfProbabilityDecomposed(lineage, pdb).MoveValue();
  EXPECT_EQ(decomposed.probability.Compare(shannon), 0) << "seed=" << seed;
  auto enumerated = ExactProbabilityByEnumeration(pdb, qi.query).MoveValue();
  EXPECT_EQ(decomposed.probability.Compare(enumerated), 0) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecomposedWmcSweep,
                         ::testing::Range<uint64_t>(1, 17));

TEST(DecomposedWmcTest, ComponentsFactorize) {
  // Two independent clause groups: components must be split (visible in the
  // stats) and the probability must match the independent-or formula.
  auto qi = MakePathQuery(1).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R1", {"c", "d"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  ASSERT_TRUE(pdb.SetProbability(0, Probability{1, 4}).ok());
  ASSERT_TRUE(pdb.SetProbability(1, Probability{1, 3}).ok());
  DnfLineage lineage;
  lineage.num_facts = 2;
  lineage.clauses = {{0}, {1}};
  auto result = ExactDnfProbabilityDecomposed(lineage, pdb).MoveValue();
  EXPECT_GE(result.stats.component_splits, 1u);
  // 1 - (3/4)(2/3) = 1/2.
  EXPECT_EQ(result.probability.Compare(BigRational(1, 2)), 0);
}

TEST(DecomposedWmcTest, AbsorptionPrunesSubsumedClauses) {
  auto qi = MakePathQuery(1).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R1", {"c", "d"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  DnfLineage lineage;
  lineage.num_facts = 2;
  // {0} subsumes {0,1}: probability is just Pr[fact 0] = 1/2.
  lineage.clauses = {{0}, {0, 1}};
  auto result = ExactDnfProbabilityDecomposed(lineage, pdb).MoveValue();
  EXPECT_EQ(result.probability.Compare(BigRational(1, 2)), 0);
}

TEST(DecomposedWmcTest, HandlesLargerLineagesThanEnumeration) {
  // 40 facts: enumeration (2^40) is hopeless; the decomposed counter runs in
  // milliseconds on the snowflake's product structure.
  auto qi = MakePathQuery(4).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 1.0;
  opt.seed = 4;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ASSERT_GE(db.NumFacts(), 36u);
  ProbabilityModel pm;
  pm.seed = 8;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  auto lineage = BuildLineage(qi.query, pdb.database()).MoveValue();
  auto result = ExactDnfProbabilityDecomposed(lineage, pdb);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const double p = result->probability.ToDouble();
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0);
  // Cross-check against plain Shannon (also feasible here).
  auto shannon = ExactDnfProbability(lineage, pdb).MoveValue();
  EXPECT_EQ(result->probability.Compare(shannon), 0);
}

}  // namespace
}  // namespace pqe
