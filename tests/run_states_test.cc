// Regression tests for the indexed sparse bottom-up membership oracle
// (Nfta::RunStates): it must agree exactly with a naive all-transitions
// reference on random automata and random labelled trees. The oracle is the
// exactness backbone of the Karp–Luby canonical checks, so silent divergence
// here would bias the whole FPRAS.

#include <vector>

#include <gtest/gtest.h>

#include "automata/nfta.h"
#include "automata/tree.h"
#include "util/rng.h"

namespace pqe {
namespace {

// Naive reference: per node, scan every transition.
std::vector<std::vector<bool>> NaiveRunStates(const Nfta& nfta,
                                              const LabeledTree& t) {
  std::vector<std::vector<bool>> states(
      t.size(), std::vector<bool>(nfta.NumStates(), false));
  for (uint32_t node = static_cast<uint32_t>(t.size()); node-- > 0;) {
    const auto& kids = t.children(node);
    for (const Nfta::Transition& tr : nfta.transitions()) {
      if (tr.symbol != t.label(node) || tr.children.size() != kids.size()) {
        continue;
      }
      bool ok = true;
      for (size_t i = 0; i < kids.size() && ok; ++i) {
        ok = states[kids[i]][tr.children[i]];
      }
      if (ok) states[node][tr.from] = true;
    }
  }
  return states;
}

Nfta RandomNfta(Rng* rng, size_t states, size_t alphabet,
                size_t transitions) {
  Nfta t;
  for (size_t i = 0; i < states; ++i) t.AddState();
  t.EnsureAlphabetSize(alphabet);
  t.SetInitialState(0);
  for (size_t q = 0; q < states; ++q) {
    t.AddTransition(static_cast<StateId>(q),
                    static_cast<SymbolId>(rng->NextBounded(alphabet)), {});
  }
  for (size_t i = 0; i < transitions; ++i) {
    const size_t arity = 1 + rng->NextBounded(3);
    std::vector<StateId> children;
    for (size_t j = 0; j < arity; ++j) {
      children.push_back(static_cast<StateId>(rng->NextBounded(states)));
    }
    t.AddTransition(static_cast<StateId>(rng->NextBounded(states)),
                    static_cast<SymbolId>(rng->NextBounded(alphabet)),
                    std::move(children));
  }
  return t;
}

// Random labelled tree with `nodes` nodes over `alphabet` symbols.
LabeledTree RandomTree(Rng* rng, size_t nodes, size_t alphabet) {
  LabeledTree t(static_cast<SymbolId>(rng->NextBounded(alphabet)));
  for (size_t i = 1; i < nodes; ++i) {
    const uint32_t parent = static_cast<uint32_t>(rng->NextBounded(i));
    t.AddChild(parent, static_cast<SymbolId>(rng->NextBounded(alphabet)));
  }
  return t;
}

class RunStatesAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RunStatesAgreement, IndexedMatchesNaive) {
  Rng rng(GetParam() * 97 + 13);
  Nfta nfta = RandomNfta(&rng, 3 + rng.NextBounded(5),
                         2 + rng.NextBounded(3), 5 + rng.NextBounded(10));
  for (int trial = 0; trial < 8; ++trial) {
    LabeledTree t =
        RandomTree(&rng, 1 + rng.NextBounded(12), nfta.AlphabetSize());
    const auto sparse = nfta.RunStates(t);
    const auto naive = NaiveRunStates(nfta, t);
    ASSERT_EQ(sparse.size(), t.size());
    for (uint32_t node = 0; node < t.size(); ++node) {
      for (StateId q = 0; q < nfta.NumStates(); ++q) {
        const bool in_sparse = std::binary_search(sparse[node].begin(),
                                                  sparse[node].end(), q);
        EXPECT_EQ(in_sparse, naive[node][q])
            << "seed=" << GetParam() << " trial=" << trial << " node="
            << node << " state=" << q;
      }
      // Sparse lists must be sorted and duplicate-free.
      for (size_t i = 1; i < sparse[node].size(); ++i) {
        EXPECT_LT(sparse[node][i - 1], sparse[node][i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunStatesAgreement,
                         ::testing::Range<uint64_t>(1, 25));

TEST(RunStatesTest, IndexSurvivesMutation) {
  // The (symbol, child) index is lazy; adding transitions after a query must
  // invalidate it.
  Nfta t;
  StateId q = t.AddState();
  StateId r = t.AddState();
  t.SetInitialState(q);
  t.AddTransition(r, 1, {});
  LabeledTree leaf(0);
  EXPECT_FALSE(t.Accepts(leaf));  // builds the index
  t.AddTransition(q, 0, {});      // must invalidate it
  EXPECT_TRUE(t.Accepts(leaf));
}

}  // namespace
}  // namespace pqe
