// Incremental-maintenance contracts (docs/serving.md "Incremental
// maintenance"): a delta rebind — patching the gadget slots of changed
// facts inside a cloned bound automaton — is bit-identical to a full bind
// of the updated labelling, on both the string and tree routes, for
// single-fact, multi-fact, and degenerate (p→0, p→1) deltas; denominator
// changes are rejected at the core level and fall back to a full rebind
// transparently at the serve level; answer memos are invalidated
// selectively (the prior labelling's memo survives in the bind LRU); and
// PqeService::ApplyUpdate keeps served answers bit-identical to cold
// evaluation of the updated database in both kernel modes, including under
// concurrent updates and batch evaluation (the TSan target).

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/path_pqe.h"
#include "core/pqe.h"
#include "core/projection.h"
#include "core/ur_construction.h"
#include "counting/weighted_pick.h"
#include "cq/builders.h"
#include "serve/prepared_query.h"
#include "serve/service.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace {

PqeEngine::Options KernelOptions(KernelMode mode) {
  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kFpras)
                  .Epsilon(0.3)
                  .Seed(0xfeed)
                  .PoolSize(48)
                  .Repetitions(1)
                  .NumThreads(1)
                  .Kernels(mode)
                  .Build();
  EXPECT_TRUE(opts.ok()) << opts.status().ToString();
  return *opts;
}

struct Fixture {
  QueryInstance qi;
  ProbabilisticDatabase pdb;
};

// String-route instance (self-join-free path query).
Fixture MakePathFixture(uint64_t prob_seed) {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 1.0;
  opt.seed = 7;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = prob_seed;
  return {std::move(qi), AttachProbabilities(std::move(db), pm)};
}

// Tree-route instance (star queries are not path queries).
Fixture MakeStarFixture(uint64_t prob_seed) {
  auto qi = MakeStarQuery(3).MoveValue();
  StarDataOptions opt;
  opt.hubs = 2;
  opt.spokes_per_hub = 2;
  opt.density = 1.0;
  opt.seed = 5;
  auto db = MakeStarDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = prob_seed;
  return {std::move(qi), AttachProbabilities(std::move(db), pm)};
}

// The delta matrix every bit-identity test walks: numerator-only updates of
// one fact, several facts, and the degenerate endpoints. Entries are
// (projected index, new numerator) pairs applied to a probs vector.
enum class DeltaKind { kSingle, kMulti, kToZero, kToOne };

std::vector<Probability> ApplyKind(std::vector<Probability> probs,
                                   DeltaKind kind) {
  auto bump = [&](size_t i, uint64_t shift) {
    probs[i].num = (probs[i].num + shift) % (probs[i].den + 1);
  };
  switch (kind) {
    case DeltaKind::kSingle:
      bump(0, 1);
      break;
    case DeltaKind::kMulti:
      for (size_t i = 0; i < 3 && i < probs.size(); ++i) bump(i, i + 1);
      break;
    case DeltaKind::kToZero:
      probs[0].num = 0;
      break;
    case DeltaKind::kToOne:
      probs[0].num = probs[0].den;
      break;
  }
  return probs;
}

constexpr DeltaKind kAllKinds[] = {DeltaKind::kSingle, DeltaKind::kMulti,
                                   DeltaKind::kToZero, DeltaKind::kToOne};

void ExpectBitIdenticalAnswer(const PqeAnswer& a, const PqeAnswer& b) {
  // The acceptance criterion is memcmp on the probability, not ==: two
  // doubles can compare equal without being the same bits (-0.0 vs 0.0).
  EXPECT_EQ(std::memcmp(&a.probability, &b.probability, sizeof(double)), 0)
      << a.probability << " vs " << b.probability;
  ASSERT_EQ(a.count_stats.has_value(), b.count_stats.has_value());
  if (a.count_stats.has_value()) {
    EXPECT_EQ(a.count_stats->ToString(), b.count_stats->ToString());
  }
}

// --- Core, string route ----------------------------------------------------

TEST(DeltaRebindTest, PathPatchMatchesFullBindAcrossDeltaMatrix) {
  Fixture fx = MakePathFixture(100);
  auto sk = BuildPathPqeSkeleton(fx.qi.query, fx.pdb.database());
  ASSERT_TRUE(sk.ok()) << sk.status().ToString();
  auto probs = ProjectedFactProbabilities(sk->original_fact, fx.pdb);
  ASSERT_TRUE(probs.ok());

  auto prior = BindPathPqeNfa(*sk, *probs);
  ASSERT_TRUE(prior.ok()) << prior.status().ToString();

  for (DeltaKind kind : kAllKinds) {
    const std::vector<Probability> next = ApplyKind(*probs, kind);
    size_t patched = 0;
    auto delta = RebindPathPqeNfa(*prior, *probs, next, &patched);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    auto fresh = BindPathPqeNfa(*sk, next);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(delta->nfa.DebugString(), fresh->nfa.DebugString());
    EXPECT_EQ(delta->word_length, fresh->word_length);
    EXPECT_TRUE(delta->denominator == fresh->denominator);
    if (kind == DeltaKind::kSingle) EXPECT_GT(patched, 0u);
  }

  // An empty delta patches nothing and reproduces the prior bind.
  size_t patched = 0;
  auto noop = RebindPathPqeNfa(*prior, *probs, *probs, &patched);
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(patched, 0u);
  EXPECT_EQ(noop->nfa.DebugString(), prior->nfa.DebugString());
}

TEST(DeltaRebindTest, PathPatchChainsAcrossSuccessiveDeltas) {
  // Patch-of-a-patch: the clone must stay patchable (layout shared, CSR
  // invalidation correct) so a stream of updates never degrades.
  Fixture fx = MakePathFixture(100);
  auto sk = BuildPathPqeSkeleton(fx.qi.query, fx.pdb.database());
  ASSERT_TRUE(sk.ok());
  auto probs = ProjectedFactProbabilities(sk->original_fact, fx.pdb);
  ASSERT_TRUE(probs.ok());

  auto bound = BindPathPqeNfa(*sk, *probs);
  ASSERT_TRUE(bound.ok());
  std::vector<Probability> cur = *probs;
  for (DeltaKind kind : kAllKinds) {
    const std::vector<Probability> next = ApplyKind(cur, kind);
    auto patched = RebindPathPqeNfa(*bound, cur, next, nullptr);
    ASSERT_TRUE(patched.ok()) << patched.status().ToString();
    auto fresh = BindPathPqeNfa(*sk, next);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(patched->nfa.DebugString(), fresh->nfa.DebugString());
    bound = std::move(patched);
    cur = next;
  }
}

TEST(DeltaRebindTest, PathPatchRejectsDenominatorChange) {
  Fixture fx = MakePathFixture(100);
  auto sk = BuildPathPqeSkeleton(fx.qi.query, fx.pdb.database());
  ASSERT_TRUE(sk.ok());
  auto probs = ProjectedFactProbabilities(sk->original_fact, fx.pdb);
  ASSERT_TRUE(probs.ok());
  auto prior = BindPathPqeNfa(*sk, *probs);
  ASSERT_TRUE(prior.ok());

  std::vector<Probability> next = *probs;
  next[0].den += 1;  // shape change: slot widths were sized for the old den
  auto rebind = RebindPathPqeNfa(*prior, *probs, next, nullptr);
  ASSERT_FALSE(rebind.ok());
  EXPECT_EQ(rebind.status().code(), StatusCode::kInvalidArgument);

  // Mismatched probs length is an input error, not a crash.
  std::vector<Probability> short_probs(*probs);
  short_probs.pop_back();
  auto bad = RebindPathPqeNfa(*prior, *probs, short_probs, nullptr);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// --- Core, tree route ------------------------------------------------------

TEST(DeltaRebindTest, TreePatchMatchesFullBindAcrossDeltaMatrix) {
  Fixture fx = MakeStarFixture(11);
  auto sk = BuildPqeSkeleton(fx.qi.query, fx.pdb.database(),
                             UrConstructionOptions{});
  ASSERT_TRUE(sk.ok()) << sk.status().ToString();
  auto probs = ProjectedFactProbabilities(sk->original_fact, fx.pdb);
  ASSERT_TRUE(probs.ok());

  auto prior = BindPqeAutomaton(*sk, *probs);
  ASSERT_TRUE(prior.ok()) << prior.status().ToString();

  for (DeltaKind kind : kAllKinds) {
    const std::vector<Probability> next = ApplyKind(*probs, kind);
    size_t patched = 0;
    auto delta = RebindPqeAutomaton(*prior, *probs, next, &patched);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    auto fresh = BindPqeAutomaton(*sk, next);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(delta->weighted.DebugString(), fresh->weighted.DebugString());
    EXPECT_EQ(delta->tree_size, fresh->tree_size);
    EXPECT_TRUE(delta->denominator == fresh->denominator);
    if (kind == DeltaKind::kSingle) EXPECT_GT(patched, 0u);
  }
}

TEST(DeltaRebindTest, TreePatchRejectsDenominatorChange) {
  Fixture fx = MakeStarFixture(11);
  auto sk = BuildPqeSkeleton(fx.qi.query, fx.pdb.database(),
                             UrConstructionOptions{});
  ASSERT_TRUE(sk.ok());
  auto probs = ProjectedFactProbabilities(sk->original_fact, fx.pdb);
  ASSERT_TRUE(probs.ok());
  auto prior = BindPqeAutomaton(*sk, *probs);
  ASSERT_TRUE(prior.ok());

  std::vector<Probability> next = *probs;
  next[0].den += 1;
  auto rebind = RebindPqeAutomaton(*prior, *probs, next, nullptr);
  ASSERT_FALSE(rebind.ok());
  EXPECT_EQ(rebind.status().code(), StatusCode::kInvalidArgument);
}

// --- WeightedPicker::UpdateWeight ------------------------------------------

std::vector<size_t> Draws(const WeightedPicker& picker, uint64_t seed,
                          size_t n) {
  Rng rng(seed);
  std::vector<size_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(picker.Pick(&rng));
  return out;
}

// m·2^e through the public ExtFloat surface (the two-arg constructor is
// private); the test's exponents all fit the double range.
ExtFloat EF(double m, int e) { return ExtFloat::FromDouble(std::ldexp(m, e)); }

TEST(DeltaRebindTest, PickerUpdateWeightIsDrawIdenticalToFullBuild) {
  // Mixed-exponent table so renormalization is exercised; index 2 holds the
  // maximum.
  const std::vector<ExtFloat> base = {
      ExtFloat::FromDouble(0.75), EF(0.5, 40),  EF(0.9, 120),
      ExtFloat::FromDouble(3.0),  EF(0.6, -50), EF(0.8, 119),
  };

  struct Case {
    const char* name;
    size_t index;
    ExtFloat value;
  };
  const Case cases[] = {
      // Non-max entry, max unchanged: the O(n − index) suffix path.
      {"suffix", 3, ExtFloat::FromDouble(7.0)},
      // The maximum itself changes: must fall back to a full TryBuild.
      {"max-grows", 2, EF(0.95, 200)},
      {"max-shrinks", 2, ExtFloat::FromDouble(1.0)},
      // p→0 on the last entry: exercises the last_nonzero_ edge fallback.
      {"tail-to-zero", 5, ExtFloat()},
      {"mid-to-zero", 1, ExtFloat()},
  };
  for (const Case& c : cases) {
    std::vector<ExtFloat> updated = base;
    updated[c.index] = c.value;

    WeightedPicker incremental;
    ASSERT_TRUE(incremental.TryBuild(base, "test").ok());
    ASSERT_TRUE(incremental.UpdateWeight(updated, c.index).ok()) << c.name;
    WeightedPicker fresh;
    ASSERT_TRUE(fresh.TryBuild(updated, "test").ok());

    EXPECT_EQ(Draws(incremental, 0x5eed, 512), Draws(fresh, 0x5eed, 512))
        << c.name;
    // And both stay draw-identical to the legacy one-shot scan.
    Rng a(0xabc), b(0xabc);
    for (size_t i = 0; i < 64; ++i) {
      EXPECT_EQ(incremental.Pick(&a), PickWeightedIndex(&b, updated))
          << c.name << " draw " << i;
    }
  }
}

TEST(DeltaRebindTest, PickerUpdateWeightRejectsBadInput) {
  const std::vector<ExtFloat> base = {ExtFloat::FromDouble(1.0),
                                      ExtFloat::FromDouble(2.0)};
  WeightedPicker picker;
  ASSERT_TRUE(picker.TryBuild(base, "test").ok());
  std::vector<ExtFloat> wrong_size = {ExtFloat::FromDouble(1.0)};
  EXPECT_FALSE(picker.UpdateWeight(wrong_size, 0).ok());
  EXPECT_FALSE(picker.UpdateWeight(base, 2).ok());  // index out of range
}

// --- PreparedQuery::Rebind -------------------------------------------------

serve::LabelDelta SingleFactDelta(const serve::PreparedQuery& prepared,
                                  const ProbabilisticDatabase& pdb) {
  const FactId fact = prepared.original_fact()[0];
  const Probability p = pdb.probability(fact);
  return {{fact}, {Probability{(p.num + 1) % (p.den + 1), p.den}}};
}

TEST(DeltaRebindTest, RebindBeforeAnyBindIsNotFound) {
  Fixture fx = MakePathFixture(100);
  auto prepared = serve::PreparedQuery::Prepare(fx.qi.query, fx.pdb.database(),
                                                UrConstructionOptions{});
  ASSERT_TRUE(prepared.ok());
  auto stats = (*prepared)->Rebind(SingleFactDelta(**prepared, fx.pdb));
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST(DeltaRebindTest, RebindPatchesAndNextEvaluationIsWarm) {
  Fixture fx = MakePathFixture(100);
  const PqeEngine::Options opts = KernelOptions(KernelMode::kExact);
  auto prepared = serve::PreparedQuery::Prepare(fx.qi.query, fx.pdb.database(),
                                                UrConstructionOptions{});
  ASSERT_TRUE(prepared.ok());

  EstimatorConfig cfg = PqeEngine::MakeEstimatorConfig(opts, nullptr);
  ASSERT_TRUE((*prepared)->EvaluateFpras(fx.pdb, cfg).ok());
  ASSERT_EQ((*prepared)->rebinds(), 1u);

  const serve::LabelDelta delta = SingleFactDelta(**prepared, fx.pdb);
  auto stats = (*prepared)->Rebind(delta);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->reused);
  EXPECT_TRUE(stats->delta);
  EXPECT_GT(stats->patched_slots, 0u);
  EXPECT_EQ((*prepared)->delta_rebinds(), 1u);

  // The patched bind is MRU: evaluating the updated labelling is a warm
  // bind hit, and the answer matches the cold engine on the updated pdb.
  ProbabilisticDatabase updated = fx.pdb;
  ASSERT_TRUE(updated.SetProbability(delta.facts[0], delta.new_probs[0]).ok());
  auto warm = (*prepared)->EvaluateFpras(updated, cfg);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ((*prepared)->bind_hits(), 1u);
  EXPECT_EQ((*prepared)->rebinds(), 1u);  // no second full bind

  PqeEngine engine(opts);
  EvalRequest r = EvalRequest::ForQuery(fx.qi.query, updated);
  r.seed = cfg.seed;
  const EvalResponse cold = engine.EvaluateRequest(r);
  ASSERT_TRUE(cold.status.ok());
  ExpectBitIdenticalAnswer(*warm, cold.answer);
}

TEST(DeltaRebindTest, RebindDenominatorChangeFallsBackToFullBind) {
  Fixture fx = MakePathFixture(100);
  const PqeEngine::Options opts = KernelOptions(KernelMode::kExact);
  auto prepared = serve::PreparedQuery::Prepare(fx.qi.query, fx.pdb.database(),
                                                UrConstructionOptions{});
  ASSERT_TRUE(prepared.ok());
  EstimatorConfig cfg = PqeEngine::MakeEstimatorConfig(opts, nullptr);
  ASSERT_TRUE((*prepared)->EvaluateFpras(fx.pdb, cfg).ok());

  const FactId fact = (*prepared)->original_fact()[0];
  const Probability p = fx.pdb.probability(fact);
  serve::LabelDelta delta{{fact}, {Probability{p.num, p.den + 1}}};
  auto stats = (*prepared)->Rebind(delta);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->delta);  // shape change: transparent full rebind
  EXPECT_EQ((*prepared)->rebinds(), 2u);
  EXPECT_EQ((*prepared)->delta_rebinds(), 0u);

  ProbabilisticDatabase updated = fx.pdb;
  ASSERT_TRUE(updated.SetProbability(fact, delta.new_probs[0]).ok());
  auto warm = (*prepared)->EvaluateFpras(updated, cfg);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ((*prepared)->bind_hits(), 1u);

  PqeEngine engine(opts);
  EvalRequest r = EvalRequest::ForQuery(fx.qi.query, updated);
  r.seed = cfg.seed;
  ExpectBitIdenticalAnswer(*warm, engine.EvaluateRequest(r).answer);
}

TEST(DeltaRebindTest, AnswerMemoInvalidationIsSelective) {
  // An update must never serve a stale memoized answer for the NEW
  // labelling, while the OLD labelling's memo stays valid in the bind LRU.
  Fixture fx = MakePathFixture(100);
  const PqeEngine::Options opts = KernelOptions(KernelMode::kExact);
  auto prepared = serve::PreparedQuery::Prepare(fx.qi.query, fx.pdb.database(),
                                                UrConstructionOptions{});
  ASSERT_TRUE(prepared.ok());
  EstimatorConfig cfg = PqeEngine::MakeEstimatorConfig(opts, nullptr);

  auto first = (*prepared)->EvaluateFpras(fx.pdb, cfg);  // memo fills
  ASSERT_TRUE(first.ok());

  const serve::LabelDelta delta = SingleFactDelta(**prepared, fx.pdb);
  ASSERT_TRUE((*prepared)->Rebind(delta).ok());
  ProbabilisticDatabase updated = fx.pdb;
  ASSERT_TRUE(updated.SetProbability(delta.facts[0], delta.new_probs[0]).ok());

  // New labelling: fresh Bound, fresh memo — the sampler must run.
  auto after = (*prepared)->EvaluateFpras(updated, cfg);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*prepared)->answer_hits(), 0u);
  EXPECT_NE(std::memcmp(&first->probability, &after->probability,
                        sizeof(double)),
            0)
      << "delta did not change the answer; the memo check is vacuous";

  // Old labelling: its Bound survived in the LRU, memo replay allowed.
  auto replay = (*prepared)->EvaluateFpras(fx.pdb, cfg);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ((*prepared)->answer_hits(), 1u);
  ExpectBitIdenticalAnswer(*replay, *first);

  // And the updated labelling memoizes independently.
  auto again = (*prepared)->EvaluateFpras(updated, cfg);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*prepared)->answer_hits(), 2u);
  ExpectBitIdenticalAnswer(*again, *after);
}

TEST(DeltaRebindTest, BindLruEvictsAndCounts) {
  Fixture fx = MakePathFixture(100);
  const PqeEngine::Options opts = KernelOptions(KernelMode::kExact);
  EstimatorConfig cfg = PqeEngine::MakeEstimatorConfig(opts, nullptr);

  ProbabilisticDatabase other = fx.pdb;
  const FactId fact = 0;
  const Probability p = fx.pdb.probability(fact);
  ASSERT_TRUE(
      other.SetProbability(fact, {(p.num + 1) % (p.den + 1), p.den}).ok());

  // Capacity 1: alternating labellings evicts on every switch.
  auto tight = serve::PreparedQuery::Prepare(fx.qi.query, fx.pdb.database(),
                                             UrConstructionOptions{},
                                             /*bind_cache_capacity=*/1);
  ASSERT_TRUE(tight.ok());
  ASSERT_TRUE((*tight)->EvaluateFpras(fx.pdb, cfg).ok());
  ASSERT_TRUE((*tight)->EvaluateFpras(other, cfg).ok());
  ASSERT_TRUE((*tight)->EvaluateFpras(fx.pdb, cfg).ok());
  EXPECT_EQ((*tight)->bind_evictions(), 2u);
  EXPECT_EQ((*tight)->bind_hits(), 0u);
  EXPECT_EQ((*tight)->rebinds() + (*tight)->delta_rebinds(), 3u);
  EXPECT_GT((*tight)->delta_rebinds(), 0u);  // evicted ≠ unpatchable

  // The default capacity (4) keeps both labellings: no evictions, a hit.
  auto roomy = serve::PreparedQuery::Prepare(fx.qi.query, fx.pdb.database(),
                                             UrConstructionOptions{});
  ASSERT_TRUE(roomy.ok());
  ASSERT_TRUE((*roomy)->EvaluateFpras(fx.pdb, cfg).ok());
  ASSERT_TRUE((*roomy)->EvaluateFpras(other, cfg).ok());
  ASSERT_TRUE((*roomy)->EvaluateFpras(fx.pdb, cfg).ok());
  EXPECT_EQ((*roomy)->bind_evictions(), 0u);
  EXPECT_GE((*roomy)->bind_hits() + (*roomy)->answer_hits(), 1u);
}

TEST(DeltaRebindTest, ConcurrentBindsAreSingleFlight) {
  Fixture fx = MakePathFixture(100);
  const PqeEngine::Options opts = KernelOptions(KernelMode::kExact);
  EstimatorConfig cfg = PqeEngine::MakeEstimatorConfig(opts, nullptr);
  auto prepared = serve::PreparedQuery::Prepare(fx.qi.query, fx.pdb.database(),
                                                UrConstructionOptions{});
  ASSERT_TRUE(prepared.ok());

  constexpr size_t kThreads = 8;
  std::atomic<size_t> ready{0};
  std::vector<PqeAnswer> answers(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }  // start together so misses overlap
      auto ans = (*prepared)->EvaluateFpras(fx.pdb, cfg);
      ASSERT_TRUE(ans.ok()) << ans.status().ToString();
      answers[t] = *ans;
    });
  }
  for (auto& th : threads) th.join();

  // Exactly one thread ran the gadget expansion; every other call either
  // joined the in-flight build (single flight) or found the completed slot.
  EXPECT_EQ((*prepared)->rebinds(), 1u);
  EXPECT_EQ((*prepared)->delta_rebinds(), 0u);
  EXPECT_EQ((*prepared)->avoided_rebinds() + (*prepared)->bind_hits(),
            kThreads - 1);
  for (size_t t = 1; t < kThreads; ++t) {
    ExpectBitIdenticalAnswer(answers[t], answers[0]);
  }
}

// --- PqeService::ApplyUpdate -----------------------------------------------

TEST(DeltaRebindTest, ServiceUpdateBitIdentityMatrix) {
  // Both routes × both kernel modes × the full delta matrix: after every
  // ApplyUpdate, a served answer must memcmp-equal a cold engine evaluation
  // of the updated database.
  struct Route {
    const char* name;
    Fixture fx;
  };
  for (KernelMode mode : {KernelMode::kExact, KernelMode::kFast}) {
    Route routes[] = {{"path", MakePathFixture(100)},
                      {"tree", MakeStarFixture(11)}};
    for (Route& route : routes) {
      SCOPED_TRACE(std::string(route.name) + "/" +
                   KernelModeToString(mode));
      const PqeEngine::Options opts = KernelOptions(mode);
      serve::PqeService::Options sopt;
      sopt.engine = opts;
      sopt.num_threads = 1;
      serve::PqeService service(sopt);
      PqeEngine cold(opts);

      ProbabilisticDatabase pdb = route.fx.pdb;
      uint64_t next_id = 1;
      auto serve_and_check = [&] {
        EvalRequest r = EvalRequest::ForQuery(route.fx.qi.query, pdb);
        r.request_id = next_id++;
        r.seed = 0xabc;
        const std::vector<EvalResponse> served = service.EvaluateBatch({r});
        ASSERT_EQ(served.size(), 1u);
        ASSERT_TRUE(served[0].status.ok()) << served[0].status.ToString();
        const EvalResponse want = cold.EvaluateRequest(r);
        ASSERT_TRUE(want.status.ok());
        ExpectBitIdenticalAnswer(served[0].answer, want.answer);
      };
      serve_and_check();  // resident prepared query for the updates to hit

      for (DeltaKind kind : kAllKinds) {
        // Build the delta against the database's current labels, in
        // original FactIds (facts 0..2 are in the projection for these
        // generators' single-relation-per-atom instances).
        serve::LabelDelta delta;
        const std::vector<Probability> before = [&] {
          std::vector<Probability> out;
          for (FactId f = 0; f < 3; ++f) out.push_back(pdb.probability(f));
          return out;
        }();
        const std::vector<Probability> after = ApplyKind(before, kind);
        for (FactId f = 0; f < 3; ++f) {
          if (before[f].num == after[f].num) continue;
          delta.facts.push_back(f);
          delta.new_probs.push_back(after[f]);
        }
        if (delta.facts.empty()) continue;  // degenerate was already there
        auto stats = service.ApplyUpdate(&pdb, delta);
        ASSERT_TRUE(stats.ok()) << stats.status().ToString();
        EXPECT_EQ(stats->facts, delta.facts.size());
        EXPECT_GE(stats->prepared_visited, 1u);
        EXPECT_EQ(stats->delta_rebinds, 1u);  // numerator-only: always patch
        EXPECT_EQ(stats->full_rebinds, 0u);
        serve_and_check();
      }
    }
  }
}

TEST(DeltaRebindTest, WatchRunsSynchronouslyInsideApplyUpdate) {
  Fixture fx = MakePathFixture(100);
  serve::PqeService::Options sopt;
  sopt.engine = KernelOptions(KernelMode::kExact);
  sopt.num_threads = 1;
  serve::PqeService service(sopt);

  size_t calls = 0;
  size_t last_facts = 0;
  const uint64_t token = service.Watch(
      [&](const serve::LabelDelta& delta,
          const serve::PqeService::UpdateStats& stats) {
        ++calls;
        last_facts = delta.facts.size();
        // Runs after the resident binds were refreshed: a watcher can
        // evaluate immediately and hit the warm bind.
        EXPECT_EQ(stats.facts, delta.facts.size());
      });

  ProbabilisticDatabase pdb = fx.pdb;
  const Probability p = pdb.probability(0);
  serve::LabelDelta delta{{0}, {Probability{(p.num + 1) % (p.den + 1), p.den}}};
  ASSERT_TRUE(service.ApplyUpdate(&pdb, delta).ok());
  EXPECT_EQ(calls, 1u);  // synchronous: observed before ApplyUpdate returned
  EXPECT_EQ(last_facts, 1u);

  EXPECT_TRUE(service.Unwatch(token));
  EXPECT_FALSE(service.Unwatch(token));  // unknown token
  const Probability q = pdb.probability(0);
  serve::LabelDelta delta2{{0},
                           {Probability{(q.num + 1) % (q.den + 1), q.den}}};
  ASSERT_TRUE(service.ApplyUpdate(&pdb, delta2).ok());
  EXPECT_EQ(calls, 1u);  // removed watcher no longer fires
}

TEST(DeltaRebindTest, ConcurrentUpdatesAndBatchesStayDeterministic) {
  // The TSan target: one thread streams ApplyUpdate into its own database
  // while evaluator threads serve batches over private snapshots. All of
  // them share the service — prepared cache, bind LRU, single-flight slots,
  // memos, telemetry — and every served answer must still memcmp-equal the
  // cold evaluation of its snapshot, no matter how updates interleave.
  Fixture fx = MakePathFixture(100);
  const PqeEngine::Options opts = KernelOptions(KernelMode::kExact);
  serve::PqeService::Options sopt;
  sopt.engine = opts;
  serve::PqeService service(sopt);
  PqeEngine cold_engine(opts);

  // Two fixed labellings the evaluators pin, plus their cold answers.
  ProbabilisticDatabase snapshots[2] = {fx.pdb, fx.pdb};
  {
    const Probability p = fx.pdb.probability(1);
    ASSERT_TRUE(snapshots[1]
                    .SetProbability(1, {(p.num + 1) % (p.den + 1), p.den})
                    .ok());
  }
  PqeAnswer cold[2];
  for (size_t i = 0; i < 2; ++i) {
    EvalRequest r = EvalRequest::ForQuery(fx.qi.query, snapshots[i]);
    r.request_id = i + 1;
    r.seed = 0xabc;
    const EvalResponse resp = cold_engine.EvaluateRequest(r);
    ASSERT_TRUE(resp.status.ok());
    cold[i] = resp.answer;
  }

  std::atomic<bool> failed{false};
  std::thread updater([&] {
    ProbabilisticDatabase pdb = fx.pdb;  // the updater's own database
    for (size_t iter = 0; iter < 48 && !failed.load(); ++iter) {
      const FactId fact = iter % 3;
      const Probability p = pdb.probability(fact);
      serve::LabelDelta delta{
          {fact}, {Probability{(p.num + 1) % (p.den + 1), p.den}}};
      if (!service.ApplyUpdate(&pdb, delta).ok()) failed.store(true);
    }
  });
  std::vector<std::thread> evaluators;
  for (size_t i = 0; i < 2; ++i) {
    evaluators.emplace_back([&, i] {
      for (size_t iter = 0; iter < 16 && !failed.load(); ++iter) {
        EvalRequest r = EvalRequest::ForQuery(fx.qi.query, snapshots[i]);
        r.request_id = i + 1;
        r.seed = 0xabc;
        const std::vector<EvalResponse> resp = service.EvaluateBatch({r});
        if (resp.size() != 1 || !resp[0].status.ok() ||
            std::memcmp(&resp[0].answer.probability, &cold[i].probability,
                        sizeof(double)) != 0) {
          failed.store(true);
        }
      }
    });
  }
  updater.join();
  for (auto& th : evaluators) th.join();
  EXPECT_FALSE(failed.load());

  const serve::ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.requests, 32u);
}

}  // namespace
}  // namespace pqe
