// Tests for the string-side multiplier gadget (MultiplierNfa): exact
// multiplication of accepted-string counts, padded widths, and composition
// along chains — mirroring the MultiplierNfta tests on strings.

#include <gtest/gtest.h>

#include "automata/multiplier_nfa.h"
#include "counting/exact.h"

namespace pqe {
namespace {

// One transition s --a--> t(accepting) with multiplier n accepts exactly n
// strings of length 1 + GadgetDepth(n).
TEST(MultiplierNfaTest, GadgetMultipliesExactly) {
  for (uint64_t n = 1; n <= 24; ++n) {
    MultiplierNfa m;
    StateId s = m.AddState();
    StateId t = m.AddState();
    m.MarkInitial(s);
    m.MarkAccepting(t);
    m.EnsureAlphabetSize(1);
    ASSERT_TRUE(m.AddTransition(s, 0, n, t).ok());
    auto nfa = m.ToNfa();
    ASSERT_TRUE(nfa.ok());
    const size_t len = 1 + MultiplierNfa::GadgetDepth(n);
    auto count = ExactCountNfaStrings(*nfa, len);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count->ToDecimalString(), std::to_string(n)) << "n=" << n;
  }
}

TEST(MultiplierNfaTest, PaddedWidthKeepsCount) {
  for (uint64_t n : {1ull, 2ull, 5ull, 7ull}) {
    MultiplierNfa m;
    StateId s = m.AddState();
    StateId t = m.AddState();
    m.MarkInitial(s);
    m.MarkAccepting(t);
    m.EnsureAlphabetSize(1);
    const uint64_t width = 5;
    ASSERT_TRUE(m.AddTransition(s, 0, n, t, width).ok());
    auto nfa = m.ToNfa().MoveValue();
    EXPECT_EQ(ExactCountNfaStrings(nfa, 1 + width)->ToDecimalString(),
              std::to_string(n))
        << "n=" << n;
    // Nothing accepted at other lengths.
    EXPECT_EQ(ExactCountNfaStrings(nfa, width)->ToDecimalString(), "0");
  }
}

TEST(MultiplierNfaTest, ChainMultipliersCompose) {
  // s --a(n=3)--> u --b(n=4)--> t: 12 strings at the combined length.
  MultiplierNfa m;
  StateId s = m.AddState();
  StateId u = m.AddState();
  StateId t = m.AddState();
  m.MarkInitial(s);
  m.MarkAccepting(t);
  m.EnsureAlphabetSize(2);
  ASSERT_TRUE(m.AddTransition(s, 0, 3, u).ok());
  ASSERT_TRUE(m.AddTransition(u, 1, 4, t).ok());
  auto nfa = m.ToNfa().MoveValue();
  const size_t len = 2 + MultiplierNfa::GadgetDepth(3) +
                     MultiplierNfa::GadgetDepth(4);
  EXPECT_EQ(ExactCountNfaStrings(nfa, len)->ToDecimalString(), "12");
}

TEST(MultiplierNfaTest, SkeletonPreservesShape) {
  Nfa base;
  StateId a = base.AddState();
  StateId b = base.AddState();
  base.MarkInitial(a);
  base.MarkAccepting(b);
  base.AddTransition(a, 0, b);
  MultiplierNfa m = MultiplierNfa::FromSkeleton(base);
  EXPECT_EQ(m.NumStates(), 2u);
  ASSERT_TRUE(m.AddTransition(a, 0, 2, b).ok());
  auto nfa = m.ToNfa().MoveValue();
  EXPECT_EQ(ExactCountNfaStrings(nfa, 2)->ToDecimalString(), "2");
}

TEST(MultiplierNfaTest, RejectsBadArguments) {
  MultiplierNfa m;
  StateId s = m.AddState();
  m.MarkInitial(s);
  EXPECT_FALSE(m.AddTransition(s, 0, 8, s, 2).ok());    // width too small
  EXPECT_FALSE(m.AddTransition(s, 0, 1, s + 9).ok());   // unknown state
  // Multiplier 0 is representable, but only by the stable translation —
  // the minimal ToNfa rejects it (its minimal encoding is absence).
  EXPECT_TRUE(m.AddTransition(s, 0, 0, s).ok());
  EXPECT_FALSE(m.ToNfa().ok());
  StableNfaLayout layout;
  EXPECT_TRUE(m.ToNfaStable(&layout).ok());
}

}  // namespace
}  // namespace pqe
