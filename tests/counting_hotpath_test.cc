// Tests for the counting-core hot path (docs/performance.md): the reusable
// WeightedPicker must be draw-identical to the one-shot PickWeightedIndex,
// the CSR-flattened automata accessors must agree with a naive recomputation
// of the old per-object layouts, Nfta copies must rebase their child-arena
// spans, and the cached estimator paths (pickers + run-state memo) must
// return bit-identical estimates to the legacy ablation paths — the memo is
// exercised against the uncached RunStates oracle through that equality,
// over dozens of randomized automata.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "automata/nfa.h"
#include "automata/nfta.h"
#include "counting/count_nfa.h"
#include "counting/count_nfta.h"
#include "counting/exact.h"
#include "counting/weighted_pick.h"
#include "util/extfloat.h"
#include "util/rng.h"

namespace pqe {
namespace {

// --- WeightedPicker ------------------------------------------------------

TEST(WeightedPickerTest, DrawIdenticalToPickWeightedIndex) {
  // Mixed-magnitude weights (spread over hundreds of binary orders): both
  // samplers renormalize by the max, so the scaled tables must match.
  Rng setup(0x12345);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + setup.NextBounded(12);
    std::vector<ExtFloat> weights(n);
    bool any_nonzero = false;
    for (size_t i = 0; i < n; ++i) {
      if (setup.NextBounded(5) == 0) continue;  // leave some weights zero
      ExtFloat w = ExtFloat::FromUint64(1 + setup.NextBounded(1000));
      // Push some weights far up/down the exponent range.
      const size_t boosts = setup.NextBounded(4);
      for (size_t b = 0; b < boosts; ++b) {
        w = setup.NextBounded(2) == 0 ? w.Mul(w) : w.Scale(1e-30);
      }
      weights[i] = w;
      any_nonzero = true;
    }
    if (!any_nonzero) weights[0] = ExtFloat::FromUint64(7);
    WeightedPicker picker(weights);
    // Same seed → same NextDouble stream → the indices must coincide draw
    // for draw.
    Rng rng_a(round * 31 + 1);
    Rng rng_b(round * 31 + 1);
    for (int draw = 0; draw < 200; ++draw) {
      ASSERT_EQ(picker.Pick(&rng_a), PickWeightedIndex(&rng_b, weights))
          << "round=" << round << " draw=" << draw;
    }
  }
}

TEST(WeightedPickerTest, SingleElement) {
  WeightedPicker picker(std::vector<ExtFloat>{ExtFloat::FromUint64(5)});
  Rng rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(picker.Pick(&rng), 0u);
}

TEST(WeightedPickerTest, ZeroWeightsNeverPicked) {
  std::vector<ExtFloat> weights(5);
  weights[1] = ExtFloat::FromUint64(3);
  weights[3] = ExtFloat::FromUint64(1);
  WeightedPicker picker(weights);
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const size_t pick = picker.Pick(&rng);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(WeightedPickerTest, ChiSquaredSanity) {
  // Empirical frequencies of a 4-point distribution must match the weight
  // proportions. χ² with 3 degrees of freedom: P(X > 16.27) = 0.001.
  const std::vector<uint64_t> raw = {1, 2, 3, 10};
  std::vector<ExtFloat> weights;
  for (uint64_t w : raw) weights.push_back(ExtFloat::FromUint64(w));
  WeightedPicker picker(weights);
  Rng rng(0xc41);
  const size_t kDraws = 40000;
  std::vector<size_t> counts(raw.size(), 0);
  for (size_t i = 0; i < kDraws; ++i) ++counts[picker.Pick(&rng)];
  const double total = 16.0;
  double chi2 = 0.0;
  for (size_t i = 0; i < raw.size(); ++i) {
    const double expected = kDraws * static_cast<double>(raw[i]) / total;
    const double d = static_cast<double>(counts[i]) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 16.27) << "draw frequencies off: " << counts[0] << " "
                         << counts[1] << " " << counts[2] << " " << counts[3];
}

TEST(WeightedPickerTest, TryBuildRejectsEmptyAndAllZero) {
  WeightedPicker picker;
  Status empty = picker.TryBuild({}, "stratum 3 in-group");
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(empty.message().find("stratum 3 in-group"), std::string::npos);
  EXPECT_NE(empty.message().find("empty weight table"), std::string::npos);
  EXPECT_TRUE(picker.empty());

  Status zeros = picker.TryBuild(std::vector<ExtFloat>(4),
                                 "mixture group table");
  EXPECT_EQ(zeros.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(zeros.message().find("mixture group table"), std::string::npos);
  EXPECT_NE(zeros.message().find("all 4 weights are zero"),
            std::string::npos);
  EXPECT_TRUE(picker.empty());

  // A good build after a failed one works and clears the error state.
  EXPECT_TRUE(picker
                  .TryBuild({ExtFloat::FromUint64(2)}, "retry")
                  .ok());
  EXPECT_EQ(picker.size(), 1u);
}

TEST(AliasPickerTest, TryBuildRejectsEmptyAndAllZero) {
  AliasPicker picker;
  Status empty = picker.TryBuild({}, "clause table");
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(empty.message().find("clause table"), std::string::npos);

  Status zeros = picker.TryBuild(std::vector<ExtFloat>(7), "tau group");
  EXPECT_EQ(zeros.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(zeros.message().find("all 7 weights are zero"),
            std::string::npos);
  EXPECT_TRUE(picker.empty());
}

// χ² of AliasPicker draw frequencies against the weight proportions. With
// k−1 degrees of freedom the 0.001 critical value is ≈ df + 4·√(2·df) for
// the table sizes used here; a fixed seed keeps the check deterministic.
double AliasChi2(const std::vector<uint64_t>& raw, size_t draws,
                 uint64_t seed) {
  std::vector<ExtFloat> weights;
  double total = 0.0;
  for (uint64_t w : raw) {
    weights.push_back(ExtFloat::FromUint64(w));
    total += static_cast<double>(w);
  }
  AliasPicker picker(weights);
  Rng rng(seed);
  std::vector<size_t> counts(raw.size(), 0);
  for (size_t i = 0; i < draws; ++i) ++counts[picker.Pick(&rng)];
  double chi2 = 0.0;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == 0) {
      EXPECT_EQ(counts[i], 0u) << "zero-weight index " << i << " drawn";
      continue;
    }
    const double expected = draws * static_cast<double>(raw[i]) / total;
    const double d = static_cast<double>(counts[i]) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

TEST(AliasPickerTest, ChiSquaredMatchesProportions) {
  // 3 df: P(X > 16.27) = 0.001.
  EXPECT_LT(AliasChi2({1, 2, 3, 10}, 40000, 0xa11a5), 16.27);
}

TEST(AliasPickerTest, SingleNonzeroColumn) {
  // Degenerate table: only index 2 can ever come back, zero columns never.
  EXPECT_LT(AliasChi2({0, 0, 5, 0}, 5000, 0x51), 1e-9);
}

TEST(AliasPickerTest, AllEqualWeights) {
  // 7 df: P(X > 24.32) = 0.001.
  EXPECT_LT(AliasChi2({3, 3, 3, 3, 3, 3, 3, 3}, 80000, 0xe0), 24.32);
}

TEST(AliasPickerTest, MillionToOneSkew) {
  // Expected rare-index count is ~2 over 2M draws — too thin for χ², so
  // bound the rare count directly (Poisson(2): P(X > 30) is astronomically
  // small) and require the heavy column to absorb the rest.
  std::vector<ExtFloat> weights = {ExtFloat::FromUint64(1000000),
                                   ExtFloat::FromUint64(1)};
  AliasPicker picker(weights);
  Rng rng(0x5e3);
  const size_t kDraws = 2000000;
  size_t rare = 0;
  for (size_t i = 0; i < kDraws; ++i) {
    const size_t pick = picker.Pick(&rng);
    ASSERT_LT(pick, 2u);
    if (pick == 1) ++rare;
  }
  EXPECT_GT(rare, 0u);
  EXPECT_LE(rare, 30u);
}

TEST(AliasPickerTest, LargeTable) {
  // > 10⁴ entries with uniform weights; 64 draws per column on average.
  // df = 16383: critical ≈ df + 4·√(2·df) ≈ 17107.
  const size_t n = 16384;
  std::vector<uint64_t> raw(n, 1);
  EXPECT_LT(AliasChi2(raw, n * 64, 0xb16), 17107.0);
}

TEST(AliasPickerTest, ExtremeExponentsRenormalized) {
  // Weights hundreds of binary orders apart must not overflow the doubles
  // in the table: the dominant weight takes essentially all draws.
  ExtFloat huge = ExtFloat::FromUint64(1000);
  for (int i = 0; i < 40; ++i) huge = huge.Mul(huge);  // ~2^(10240)
  std::vector<ExtFloat> weights = {ExtFloat::FromUint64(3), huge};
  AliasPicker picker(weights);
  Rng rng(0xd0e);
  for (int i = 0; i < 2000; ++i) ASSERT_EQ(picker.Pick(&rng), 1u);
}

TEST(IndexDrawerTest, LegacyModeBuildsNothingAndMatchesOneShot) {
  std::vector<ExtFloat> weights = {ExtFloat::FromUint64(1),
                                   ExtFloat::FromUint64(4),
                                   ExtFloat::FromUint64(2)};
  CountStats stats;
  IndexDrawer drawer;
  drawer.Prepare(IndexDrawer::Mode::kLegacy, weights, &stats);
  EXPECT_EQ(stats.picker_builds, 0u);
  EXPECT_EQ(stats.alias_builds, 0u);
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(drawer.Draw(&a), PickWeightedIndex(&b, weights));
  }
}

TEST(IndexDrawerTest, CachedModeDrawIdenticalAndCounted) {
  std::vector<ExtFloat> weights = {ExtFloat::FromUint64(5),
                                   ExtFloat::FromUint64(1)};
  CountStats stats;
  IndexDrawer drawer;
  drawer.Prepare(IndexDrawer::Mode::kCached, weights, &stats);
  EXPECT_EQ(stats.picker_builds, 1u);
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(drawer.Draw(&a), PickWeightedIndex(&b, weights));
  }
}

TEST(IndexDrawerTest, AliasModeCountsBuildsAndRespectsSupport) {
  std::vector<ExtFloat> weights(3);
  weights[1] = ExtFloat::FromUint64(9);
  CountStats stats;
  IndexDrawer drawer;
  drawer.Prepare(IndexDrawer::Mode::kAlias, weights, &stats);
  EXPECT_EQ(stats.alias_builds, 1u);
  EXPECT_EQ(stats.picker_builds, 0u);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) ASSERT_EQ(drawer.Draw(&rng), 1u);
}

TEST(WeightedPickerTest, RebuildReuses) {
  WeightedPicker picker;
  picker.Build({ExtFloat::FromUint64(1), ExtFloat::FromUint64(1)});
  EXPECT_EQ(picker.size(), 2u);
  picker.Build({ExtFloat::FromUint64(4)});
  EXPECT_EQ(picker.size(), 1u);
  Rng rng(5);
  EXPECT_EQ(picker.Pick(&rng), 0u);
}

// --- CSR accessor equivalence --------------------------------------------

Nfa RandomNfa(Rng* rng, size_t states, size_t alphabet, size_t transitions) {
  Nfa a;
  for (size_t i = 0; i < states; ++i) a.AddState();
  a.EnsureAlphabetSize(alphabet);
  a.MarkInitial(0);
  for (size_t i = 0; i < transitions; ++i) {
    a.AddTransition(static_cast<StateId>(rng->NextBounded(states)),
                    static_cast<SymbolId>(rng->NextBounded(alphabet)),
                    static_cast<StateId>(rng->NextBounded(states)));
  }
  for (size_t i = 0; i < 1 + states / 3; ++i) {
    a.MarkInitial(static_cast<StateId>(rng->NextBounded(states)));
    a.MarkAccepting(static_cast<StateId>(rng->NextBounded(states)));
  }
  return a;
}

Nfta RandomNfta(Rng* rng, size_t states, size_t alphabet,
                size_t transitions) {
  Nfta t;
  for (size_t i = 0; i < states; ++i) t.AddState();
  t.EnsureAlphabetSize(alphabet);
  t.SetInitialState(0);
  for (size_t q = 0; q < states; ++q) {
    t.AddTransition(static_cast<StateId>(q),
                    static_cast<SymbolId>(rng->NextBounded(alphabet)), {});
  }
  for (size_t i = 0; i < transitions; ++i) {
    const size_t arity = 1 + rng->NextBounded(3);
    std::vector<StateId> children;
    for (size_t j = 0; j < arity; ++j) {
      children.push_back(static_cast<StateId>(rng->NextBounded(states)));
    }
    t.AddTransition(static_cast<StateId>(rng->NextBounded(states)),
                    static_cast<SymbolId>(rng->NextBounded(alphabet)),
                    std::move(children));
  }
  return t;
}

TEST(CsrEquivalenceTest, NfaAdjacencyMatchesNaive) {
  Rng rng(0xabc);
  for (int round = 0; round < 25; ++round) {
    const size_t S = 2 + rng.NextBounded(8);
    Nfa a = RandomNfa(&rng, S, 2 + rng.NextBounded(3),
                      3 + rng.NextBounded(20));
    for (StateId s = 0; s < S; ++s) {
      std::vector<uint32_t> out_naive, in_naive;
      for (uint32_t i = 0; i < a.transitions().size(); ++i) {
        if (a.transitions()[i].from == s) out_naive.push_back(i);
        if (a.transitions()[i].to == s) in_naive.push_back(i);
      }
      EXPECT_TRUE(a.OutTransitions(s) == out_naive) << "state " << s;
      EXPECT_TRUE(a.InTransitions(s) == in_naive) << "state " << s;
    }
  }
}

TEST(CsrEquivalenceTest, NftaIndexesMatchNaive) {
  Rng rng(0xdef);
  for (int round = 0; round < 25; ++round) {
    const size_t S = 2 + rng.NextBounded(8);
    const size_t A = 2 + rng.NextBounded(3);
    Nfta t = RandomNfta(&rng, S, A, 3 + rng.NextBounded(20));
    const auto& trans = t.transitions();
    for (StateId s = 0; s < S; ++s) {
      std::vector<uint32_t> naive;
      for (uint32_t i = 0; i < trans.size(); ++i) {
        if (trans[i].from == s) naive.push_back(i);
      }
      EXPECT_TRUE(t.OutTransitions(s) == naive) << "state " << s;
    }
    for (SymbolId sym = 0; sym < A; ++sym) {
      std::vector<uint32_t> by_symbol, leaves;
      for (uint32_t i = 0; i < trans.size(); ++i) {
        if (trans[i].symbol != sym) continue;
        by_symbol.push_back(i);
        if (trans[i].children.empty()) leaves.push_back(i);
      }
      EXPECT_TRUE(t.TransitionsWithSymbol(sym) == by_symbol)
          << "symbol " << sym;
      EXPECT_TRUE(t.LeafTransitions(sym) == leaves) << "symbol " << sym;
      for (StateId c0 = 0; c0 < S; ++c0) {
        std::vector<uint32_t> nonleaf;
        for (uint32_t i = 0; i < trans.size(); ++i) {
          if (trans[i].symbol == sym && !trans[i].children.empty() &&
              trans[i].children[0] == c0) {
            nonleaf.push_back(i);
          }
        }
        EXPECT_TRUE(t.TransitionsWithSymbolChild0(sym, c0) == nonleaf)
            << "symbol " << sym << " child0 " << c0;
      }
    }
  }
}

TEST(CsrEquivalenceTest, NftaCopyRebasesChildren) {
  Rng rng(7);
  Nfta original = RandomNfta(&rng, 5, 2, 12);
  std::vector<std::vector<StateId>> expected;
  for (const Nfta::Transition& t : original.transitions()) {
    expected.push_back(t.children.ToVector());
  }
  Nfta copy = original;
  // Mutating (and reallocating) the original's arena must not disturb the
  // copy's spans.
  for (int i = 0; i < 50; ++i) {
    original.AddTransition(0, 0, {1, 2, 3, 4, 0, 1, 2});
  }
  ASSERT_EQ(copy.NumTransitions(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(copy.transitions()[i].children == expected[i]) << "t " << i;
  }
  // And the copy's own growth must rebase its (independent) arena.
  copy.AddTransition(1, 1, {0, 0, 0, 0, 0, 0, 0, 0});
  EXPECT_TRUE(copy.transitions()[0].children == expected[0]);
}

TEST(CsrEquivalenceTest, NftaSelfAliasedAddTransition) {
  // Feeding a transition's own children span back into AddTransitionView
  // must copy before the arena reallocates under it.
  Nfta t;
  StateId q = t.AddState();
  t.SetInitialState(q);
  t.AddTransition(q, 0, {q, q, q});
  for (int i = 0; i < 40; ++i) {
    t.AddTransitionView(q, 1, t.transitions()[0].children);
  }
  for (const Nfta::Transition& tr : t.transitions()) {
    ASSERT_EQ(tr.children.size(), 3u);
    for (StateId c : tr.children) EXPECT_EQ(c, q);
  }
}

// --- Cached vs legacy estimator equality ---------------------------------

EstimatorConfig HotpathConfig(uint64_t seed, bool legacy) {
  EstimatorConfig cfg;
  cfg.epsilon = 0.3;
  cfg.seed = seed;
  cfg.pool_size = 48;
  cfg.disable_hotpath_caches = legacy;
  return cfg;
}

// The cached paths (per-group pickers + run-state memo) consume the same
// RNG stream and must make the same canonical decisions as the legacy
// paths (per-draw PickWeightedIndex + materialize-and-simulate), so the
// estimates and sampling stats must match bit for bit. This is also the
// memo-correctness test: a single divergent membership answer anywhere
// changes acceptance counts and shows up here.
TEST(HotpathEquivalenceTest, CountNftaCachedMatchesLegacy) {
  Rng rng(0x9e1);
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Nfta t = RandomNfta(&rng, 2 + rng.NextBounded(5), 2,
                        4 + rng.NextBounded(12));
    const size_t n = 3 + rng.NextBounded(6);
    auto legacy = CountNftaTrees(t, n, HotpathConfig(seed, true));
    auto cached = CountNftaTrees(t, n, HotpathConfig(seed, false));
    ASSERT_TRUE(legacy.ok() && cached.ok());
    EXPECT_EQ(cached->value.ToString(), legacy->value.ToString())
        << "seed " << seed;
    EXPECT_EQ(cached->stats.attempts, legacy->stats.attempts);
    EXPECT_EQ(cached->stats.accepted, legacy->stats.accepted);
    EXPECT_EQ(cached->stats.membership_checks,
              legacy->stats.membership_checks);
    EXPECT_EQ(cached->stats.pool_entries, legacy->stats.pool_entries);
    // Only the cached run builds pickers / touches the memo.
    EXPECT_EQ(legacy->stats.picker_builds, 0u);
    EXPECT_EQ(legacy->stats.runstates_memo_hits, 0u);
    if (cached->stats.membership_checks > 0) {
      EXPECT_GT(cached->stats.runstates_memo_hits +
                    cached->stats.runstates_memo_misses,
                0u);
    }
  }
}

// An automaton whose ambiguity survives size stratification: two same-symbol
// same-arity transitions out of the root state stay live at every size, so
// the Karp–Luby canonical-witness loop (and the run-state memo behind it)
// runs in every root stratum. The child languages overlap on the 0-leaf.
Nfta AmbiguousCombNfta() {
  Nfta t;
  StateId q0 = t.AddState();
  StateId a = t.AddState();
  StateId b = t.AddState();
  t.SetInitialState(q0);
  t.AddTransition(a, 0, {});
  t.AddTransition(b, 0, {});
  t.AddTransition(a, 1, {});
  t.AddTransition(q0, 2, {a, q0});
  t.AddTransition(q0, 2, {b, q0});
  t.AddTransition(q0, 0, {});
  return t;
}

TEST(HotpathEquivalenceTest, CountNftaAmbiguousAutomaton) {
  Nfta t = AmbiguousCombNfta();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto legacy = CountNftaTrees(t, 15, HotpathConfig(seed, true));
    auto cached = CountNftaTrees(t, 15, HotpathConfig(seed, false));
    ASSERT_TRUE(legacy.ok() && cached.ok());
    EXPECT_EQ(cached->value.ToString(), legacy->value.ToString())
        << "seed " << seed;
    EXPECT_GT(cached->stats.membership_checks, 0u);
    EXPECT_GT(cached->stats.runstates_memo_hits, 0u);
    EXPECT_GT(cached->stats.picker_builds, 0u);
  }
}

TEST(HotpathEquivalenceTest, CountNfaCachedMatchesLegacy) {
  Rng rng(0x5ca1e);
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const size_t S = 2 + rng.NextBounded(6);
    // A small alphabet forces same-symbol in-transition groups (ambiguity).
    Nfa a = RandomNfa(&rng, S, 1 + rng.NextBounded(2),
                      4 + rng.NextBounded(16));
    const size_t n = 4 + rng.NextBounded(5);
    auto legacy = CountNfaStrings(a, n, HotpathConfig(seed, true));
    auto cached = CountNfaStrings(a, n, HotpathConfig(seed, false));
    ASSERT_TRUE(legacy.ok() && cached.ok());
    EXPECT_EQ(cached->value.ToString(), legacy->value.ToString())
        << "seed " << seed;
    EXPECT_EQ(cached->stats.attempts, legacy->stats.attempts);
    EXPECT_EQ(cached->stats.accepted, legacy->stats.accepted);
    EXPECT_EQ(cached->stats.membership_checks,
              legacy->stats.membership_checks);
  }
}

TEST(HotpathEquivalenceTest, MedianOfRWithCaches) {
  // The parallel median-of-R path (with adjacency warmed for the workers)
  // must agree between modes too, including the aggregated hot-path stats.
  Nfta t = AmbiguousCombNfta();
  EstimatorConfig legacy_cfg = HotpathConfig(0xfeed, true);
  legacy_cfg.repetitions = 5;
  legacy_cfg.num_threads = 4;
  EstimatorConfig cached_cfg = legacy_cfg;
  cached_cfg.disable_hotpath_caches = false;
  auto legacy = CountNftaTrees(t, 13, legacy_cfg);
  auto cached = CountNftaTrees(t, 13, cached_cfg);
  ASSERT_TRUE(legacy.ok() && cached.ok());
  EXPECT_EQ(cached->value.ToString(), legacy->value.ToString());
  EXPECT_GT(cached->stats.picker_builds, 0u);
  EXPECT_GT(cached->stats.runstates_memo_hits, 0u);
}

TEST(HotpathEquivalenceTest, CachedEstimateTracksExactCount) {
  // Accuracy spot check: the cached estimator stays within a loose band of
  // the exact DP count on the ambiguous automaton (Catalan-like counts).
  Nfta t;
  StateId q = t.AddState();
  t.SetInitialState(q);
  t.AddTransition(q, 0, {q, q});
  t.AddTransition(q, 0, {});
  t.AddTransition(q, 1, {});
  const size_t n = 11;
  auto exact = ExactCountNftaTrees(t, n);
  ASSERT_TRUE(exact.ok());
  const double exact_log2 = ExtFloat::FromBigUint(*exact).Log2();
  EstimatorConfig cfg = HotpathConfig(0x7e57, false);
  cfg.pool_size = 96;
  auto est = CountNftaTrees(t, n, cfg);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->value.Log2(), exact_log2, 0.6);
}

}  // namespace
}  // namespace pqe
