// Tests for the conditioned-world sampling API built on the counting pools:
// every sampled world must satisfy the query, and for uniform labels the
// empirical distribution must roughly match the conditioned distribution.

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "core/sampling.h"
#include "cq/builders.h"
#include "eval/eval.h"
#include "workload/generators.h"

namespace pqe {
namespace {

EstimatorConfig SamplingConfig(uint64_t seed = 7) {
  EstimatorConfig cfg;
  cfg.epsilon = 0.15;
  cfg.seed = seed;
  return cfg;
}

std::string WorldKey(const std::vector<bool>& world) {
  std::string key;
  for (bool b : world) key.push_back(b ? '1' : '0');
  return key;
}

TEST(SamplingTest, EverySampledSubinstanceSatisfiesQuery) {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 2;
  opt.density = 0.8;
  opt.seed = 4;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  auto result =
      SampleSatisfyingSubinstances(qi.query, db, SamplingConfig(), 64);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->worlds.size(), 64u);
  for (const auto& world : result->worlds) {
    ASSERT_EQ(world.size(), result->projected_db.NumFacts());
    EXPECT_TRUE(
        SatisfiesSubinstance(result->projected_db, qi.query, world).value());
  }
}

TEST(SamplingTest, ConditionedWorldsSatisfyQuery) {
  auto qi = MakeH0Query().MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R", {"a"}).ok());
  ASSERT_TRUE(db.AddFactByName("R", {"b"}).ok());
  ASSERT_TRUE(db.AddFactByName("S", {"a", "u"}).ok());
  ASSERT_TRUE(db.AddFactByName("S", {"b", "v"}).ok());
  ASSERT_TRUE(db.AddFactByName("T", {"u"}).ok());
  ASSERT_TRUE(db.AddFactByName("T", {"v"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  ASSERT_TRUE(pdb.SetProbability(0, Probability{2, 3}).ok());
  ASSERT_TRUE(pdb.SetProbability(3, Probability{1, 4}).ok());
  auto result =
      SampleConditionedWorlds(qi.query, pdb, SamplingConfig(3), 48);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->worlds.size(), 48u);
  for (const auto& world : result->worlds) {
    EXPECT_TRUE(
        SatisfiesSubinstance(result->projected_db, qi.query, world).value());
  }
}

TEST(SamplingTest, UnsatisfiableQueryYieldsNoWorlds) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"x", "y"}).ok());  // no join
  auto result =
      SampleSatisfyingSubinstances(qi.query, db, SamplingConfig(), 16);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->worlds.empty());
}

TEST(SamplingTest, UniformCaseCoversAllSatisfyingWorlds) {
  // Tiny instance: R1(a,b), R2(b,c), R2(b,d): satisfying subsets are those
  // with fact 0 and at least one of facts 1, 2 → 3 worlds.
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "c"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "d"}).ok());
  auto result =
      SampleSatisfyingSubinstances(qi.query, db, SamplingConfig(11), 600);
  ASSERT_TRUE(result.ok());
  std::map<std::string, size_t> histogram;
  for (const auto& world : result->worlds) ++histogram[WorldKey(world)];
  EXPECT_EQ(histogram.size(), 3u);  // all three satisfying worlds appear
  for (const auto& [key, count] : histogram) {
    // Near-uniform: each world ~1/3 of draws, allow a wide tolerance.
    EXPECT_GT(count, 600 / 3 / 3) << key;
    EXPECT_LT(count, 600 * 2 / 3) << key;
  }
}

TEST(SamplingTest, OriginalFactMappingIsConsistent) {
  auto qi = MakePathQuery(2).MoveValue();
  Schema schema = qi.schema;
  ASSERT_TRUE(schema.AddRelation("Noise", 1).ok());
  Database db(schema);
  ASSERT_TRUE(db.AddFactByName("Noise", {"n"}).ok());  // FactId 0, projected away
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "c"}).ok());
  auto result =
      SampleSatisfyingSubinstances(qi.query, db, SamplingConfig(), 8);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->original_fact.size(), 2u);
  EXPECT_EQ(result->original_fact[0], 1u);
  EXPECT_EQ(result->original_fact[1], 2u);
}

}  // namespace
}  // namespace pqe
