// Tests for the RPQ subsystem (docs/rpq.md): the regex parser (round-trip,
// precedence, error positions), the compiled query NFA, the product
// skeleton's exactness against world enumeration, the lineage fallback for
// non-scan-orderable instances, the engine cascade, and the serving route's
// bit-identity with the one-shot engine.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "rpq/automaton.h"
#include "rpq/eval.h"
#include "rpq/product.h"
#include "rpq/regex.h"
#include "serve/service.h"
#include "workload/generators.h"

namespace pqe {
namespace {

using rpq::RpqQuery;

std::string Canon(const std::string& text) {
  auto q = RpqQuery::Parse(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  return q.ok() ? q->Canonical() : "<parse error>";
}

// --- Parser ---------------------------------------------------------------

TEST(RpqParseTest, CanonicalRoundTripsThroughParse) {
  for (const char* text :
       {"a", "a/b/c", "a|b|c", "a|b/c", "(a|b)/c", "a*", "a+?", "(a/b)*",
        "^a", "a/(a|b)*/a", "(a|^b)+/c?", "_x1/Y_2"}) {
    const std::string once = Canon(text);
    EXPECT_EQ(Canon(once), once) << "not a fixed point: " << text;
  }
}

TEST(RpqParseTest, WhitespaceIsInsignificant) {
  EXPECT_EQ(Canon("  a |  b / c "), Canon("a|b/c"));
  EXPECT_EQ(Canon("( a | b ) *"), Canon("(a|b)*"));
}

TEST(RpqParseTest, AlternationBindsLooserThanConcat) {
  auto q = RpqQuery::Parse("a|b/c").MoveValue();
  ASSERT_EQ(q.root().kind, rpq::RegexKind::kAlt);
  ASSERT_EQ(q.root().children.size(), 2u);
  EXPECT_EQ(q.root().children[0]->kind, rpq::RegexKind::kLabel);
  EXPECT_EQ(q.root().children[1]->kind, rpq::RegexKind::kConcat);
  // And the canonical form needs no parentheses to say so.
  EXPECT_EQ(q.Canonical(), "a|b/c");
  EXPECT_EQ(Canon("(a|b)/c"), "(a|b)/c");
}

TEST(RpqParseTest, PostfixBindsTightest) {
  auto q = RpqQuery::Parse("a/b*").MoveValue();
  ASSERT_EQ(q.root().kind, rpq::RegexKind::kConcat);
  EXPECT_EQ(q.root().children[1]->kind, rpq::RegexKind::kStar);
  EXPECT_EQ(Canon("(a/b)*"), "(a/b)*");  // parens preserved when needed
}

TEST(RpqParseTest, InverseDistributesToLabels) {
  // ^ over a concatenation reverses it; over | * + ? it distributes. The
  // parsed tree carries inversion on labels only.
  EXPECT_EQ(Canon("^(a/b)"), Canon("^b/^a"));
  EXPECT_EQ(Canon("^(a|b)"), Canon("^a|^b"));
  EXPECT_EQ(Canon("^(a*)"), Canon("(^a)*"));
  EXPECT_EQ(Canon("^^a"), "a");
}

TEST(RpqParseTest, ErrorsNameTheColumn) {
  struct Case {
    const char* text;
    const char* fragment;
  };
  for (const Case& c : {Case{"", "empty regular path query"},
                        Case{"a//b", "at column 3"},
                        Case{"(a/b", "expected ')' at column 5"},
                        Case{"a)", "unexpected ')' at column 2"},
                        Case{"|a", "at column 1"},
                        Case{"a b", "unexpected 'b' at column 3"}}) {
    auto q = RpqQuery::Parse(c.text);
    ASSERT_FALSE(q.ok()) << c.text;
    EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(q.status().message().find(c.fragment), std::string::npos)
        << c.text << " -> " << q.status().ToString();
  }
}

TEST(RpqParseTest, LabelsAndLinearChain) {
  auto q = RpqQuery::Parse("a/b/a").MoveValue();
  EXPECT_EQ(q.Labels(), (std::vector<std::string>{"a", "b"}));
  std::vector<std::string> chain;
  EXPECT_TRUE(q.IsLinearChain(&chain));
  EXPECT_EQ(chain, (std::vector<std::string>{"a", "b", "a"}));
  EXPECT_FALSE(RpqQuery::Parse("a/b*").MoveValue().IsLinearChain());
  EXPECT_FALSE(RpqQuery::Parse("a|b").MoveValue().IsLinearChain());
  EXPECT_FALSE(RpqQuery::Parse("a/^b").MoveValue().IsLinearChain());
}

// --- Query NFA ------------------------------------------------------------

TEST(RpqAutomatonTest, CompiledNfaAcceptsTheRegexLanguage) {
  auto q = RpqQuery::Parse("a/(a|b)*/a").MoveValue();
  auto nfa = rpq::CompileRegex(q).MoveValue();
  ASSERT_EQ(nfa.labels.size(), 2u);  // a, b in first-occurrence order
  EXPECT_EQ(nfa.labels[0], "a");
  EXPECT_FALSE(nfa.accepts_epsilon);
  const uint32_t A = 0;
  const uint32_t B = 1;
  auto accepts = [&](std::vector<std::pair<uint32_t, bool>> steps) {
    return rpq::AcceptsSteps(nfa, steps);
  };
  EXPECT_TRUE(accepts({{A, false}, {A, false}}));
  EXPECT_TRUE(accepts({{A, false}, {B, false}, {A, false}}));
  EXPECT_FALSE(accepts({{A, false}}));
  EXPECT_FALSE(accepts({{A, false}, {B, false}}));
  EXPECT_FALSE(accepts({{B, false}, {A, false}}));
  EXPECT_FALSE(accepts({}));
}

TEST(RpqAutomatonTest, EpsilonAndInverseSteps) {
  auto star = rpq::CompileRegex(RpqQuery::Parse("a*").MoveValue()).MoveValue();
  EXPECT_TRUE(star.accepts_epsilon);
  EXPECT_TRUE(rpq::AcceptsSteps(star, {}));

  auto two = rpq::CompileRegex(RpqQuery::Parse("a/^a").MoveValue())
                 .MoveValue();
  EXPECT_TRUE(rpq::AcceptsSteps(two, {{0, false}, {0, true}}));
  EXPECT_FALSE(rpq::AcceptsSteps(two, {{0, false}, {0, false}}));
}

TEST(RpqAutomatonTest, CompilationIsDeterministic) {
  // The serving content key hashes the canonical text, so equal canonical
  // regexes must compile to identical automata.
  auto a = rpq::CompileRegex(RpqQuery::Parse("(a|b)+/c").MoveValue())
               .MoveValue();
  auto b = rpq::CompileRegex(RpqQuery::Parse("( a | b ) + / c").MoveValue())
               .MoveValue();
  EXPECT_EQ(a.num_states, b.num_states);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.accepting, b.accepting);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].from, b.edges[i].from);
    EXPECT_EQ(a.edges[i].label, b.edges[i].label);
    EXPECT_EQ(a.edges[i].inverse, b.edges[i].inverse);
    EXPECT_EQ(a.edges[i].to, b.edges[i].to);
  }
}

// --- Skeleton exactness ---------------------------------------------------

ProbabilisticDatabase SmallKg(uint32_t layers, uint32_t width, uint64_t seed,
                              double density = 0.6) {
  KgReachabilityOptions kopt;
  kopt.layers = layers;
  kopt.width = width;
  kopt.density = density;
  kopt.seed = seed;
  auto db = MakeKgReachabilityDatabase(kopt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = seed + 1;
  return AttachProbabilities(std::move(db), pm);
}

// The skeleton route's exact count must equal brute-force world enumeration
// — star, alternation, optional, and self-join shapes included. This is the
// RPQ analogue of the Section 3 bijection test.
TEST(RpqSkeletonTest, ExactCountMatchesWorldEnumeration) {
  for (const char* text :
       {"a/b", "a/a", "a/(a|b)*/a", "(a|b)+", "a?/b", "a/b?/a*"}) {
    for (uint64_t seed : {3u, 5u, 9u}) {
      ProbabilisticDatabase pdb = SmallKg(3, 2, seed);
      auto q = RpqQuery::Parse(text).MoveValue();
      auto truth = rpq::ExactRpqProbabilityByEnumeration(q, pdb);
      ASSERT_TRUE(truth.ok()) << truth.status().ToString();
      auto via_skeleton = rpq::RpqExact(q, pdb);
      ASSERT_TRUE(via_skeleton.ok())
          << text << " seed=" << seed << ": "
          << via_skeleton.status().ToString();
      // Compare() cross-multiplies: the two routes reduce differently.
      EXPECT_EQ(via_skeleton->Compare(*truth), 0)
          << text << " seed=" << seed << ": skeleton "
          << via_skeleton->ToString() << " vs enumeration "
          << truth->ToString();
    }
  }
}

TEST(RpqSkeletonTest, TriviallyTrueRegexHasProbabilityOne) {
  ProbabilisticDatabase pdb = SmallKg(2, 2, 1);
  auto q = RpqQuery::Parse("a*").MoveValue();
  EXPECT_EQ(rpq::RpqExact(q, pdb)->Compare(BigRational::One()), 0);
  EXPECT_EQ(rpq::ExactRpqProbabilityByEnumeration(q, pdb)->Compare(
                BigRational::One()),
            0);
}

TEST(RpqSkeletonTest, CyclicInstanceIsNotScanOrderable) {
  // A self-loop under a+ asks a walk to consume one fact twice: no scan
  // order exists and the skeleton route reports NotSupported.
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("a", 2).ok());
  Database db(schema);
  ASSERT_TRUE(db.AddFactByName("a", {"v", "v"}).ok());
  ASSERT_TRUE(db.AddFactByName("a", {"v", "w"}).ok());
  auto q = RpqQuery::Parse("a+").MoveValue();
  EXPECT_EQ(rpq::BuildRpqSkeleton(q, db).status().code(),
            StatusCode::kNotSupported);
}

TEST(RpqSkeletonTest, UnknownLabelIsInvalid) {
  ProbabilisticDatabase pdb = SmallKg(2, 2, 1);
  auto q = RpqQuery::Parse("a/zz").MoveValue();
  EXPECT_EQ(rpq::BuildRpqSkeleton(q, pdb.database()).status().code(),
            StatusCode::kInvalidArgument);
}

// --- Lineage fallback -----------------------------------------------------

// 2RPQ inverse steps pair facts of one layer in both orders, so the scan
// order fails; the lineage route must still agree with enumeration.
TEST(RpqLineageTest, InverseRegexMatchesEnumerationViaLineage) {
  for (uint64_t seed : {2u, 4u}) {
    ProbabilisticDatabase pdb = SmallKg(2, 3, seed, /*density=*/0.8);
    auto q = RpqQuery::Parse("a/^a").MoveValue();
    auto product = rpq::BuildRpqProduct(q, pdb.database());
    ASSERT_TRUE(product.ok());
    auto lineage = rpq::BuildRpqLineage(*product, /*max_clauses=*/10'000);
    ASSERT_TRUE(lineage.ok()) << lineage.status().ToString();

    auto truth = rpq::ExactRpqProbabilityByEnumeration(q, pdb);
    ASSERT_TRUE(truth.ok());

    // Route through the engine: kAuto over a >threshold instance cascades
    // kFpras -> NotSupported -> exact lineage.
    auto opts = PqeEngine::Options::Builder()
                    .Method(PqeMethod::kAuto)
                    .EnumerationThreshold(0)
                    .NumThreads(1)
                    .Build();
    ASSERT_TRUE(opts.ok());
    PqeEngine engine(*opts);
    EvalResponse resp =
        engine.EvaluateRequest(EvalRequest::ForRpq(q, pdb));
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_TRUE(resp.answer.is_exact);
    EXPECT_NEAR(resp.answer.probability, truth->ToDouble(), 1e-12)
        << "seed=" << seed;
  }
}

TEST(RpqLineageTest, ForcedFprasOnCyclicInstanceReportsNotSupported) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("a", 2).ok());
  Database db(schema);
  ASSERT_TRUE(db.AddFactByName("a", {"v", "v"}).ok());
  std::vector<Probability> probs{Probability::Half()};
  auto pdb = ProbabilisticDatabase::Make(std::move(db), std::move(probs))
                 .MoveValue();
  auto q = RpqQuery::Parse("a+").MoveValue();
  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kFpras)
                  .NumThreads(1)
                  .Build();
  ASSERT_TRUE(opts.ok());
  PqeEngine engine(*opts);
  EvalResponse resp = engine.EvaluateRequest(EvalRequest::ForRpq(q, pdb));
  EXPECT_EQ(resp.status.code(), StatusCode::kNotSupported);
}

// --- Engine cascade -------------------------------------------------------

TEST(RpqEngineTest, AutoResolvesSmallInstancesExactly) {
  ProbabilisticDatabase pdb = SmallKg(2, 2, 6);
  auto q = RpqQuery::Parse("(a|b)+").MoveValue();
  PqeEngine engine;  // defaults: kAuto, threshold 16
  EvalResponse resp = engine.EvaluateRequest(EvalRequest::ForRpq(q, pdb));
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.answer.method_used, PqeMethod::kEnumeration);
  auto truth = rpq::ExactRpqProbabilityByEnumeration(q, pdb);
  ASSERT_TRUE(truth.ok());
  EXPECT_NEAR(resp.answer.probability, truth->ToDouble(), 1e-12);
}

TEST(RpqEngineTest, UnsupportedMethodsAreTyped) {
  ProbabilisticDatabase pdb = SmallKg(2, 2, 6);
  auto q = RpqQuery::Parse("a/b").MoveValue();
  for (PqeMethod m : {PqeMethod::kSafePlan, PqeMethod::kMonteCarlo}) {
    auto opts = PqeEngine::Options::Builder().Method(m).Build();
    ASSERT_TRUE(opts.ok());
    PqeEngine engine(*opts);
    EvalResponse resp = engine.EvaluateRequest(EvalRequest::ForRpq(q, pdb));
    EXPECT_EQ(resp.status.code(), StatusCode::kNotSupported)
        << PqeMethodToString(m);
  }
}

TEST(RpqEngineTest, FprasIsDeterministicAcrossThreadCounts) {
  ProbabilisticDatabase pdb = SmallKg(3, 3, 8);
  auto q = RpqQuery::Parse("a/(a|b)*/a").MoveValue();
  double first = -1.0;
  for (size_t threads : {1u, 2u, 4u}) {
    auto opts = PqeEngine::Options::Builder()
                    .Method(PqeMethod::kFpras)
                    .Epsilon(0.3)
                    .Seed(0xabc)
                    .PoolSize(32)
                    .Repetitions(3)
                    .NumThreads(threads)
                    .Build();
    ASSERT_TRUE(opts.ok());
    PqeEngine engine(*opts);
    EvalResponse resp = engine.EvaluateRequest(EvalRequest::ForRpq(q, pdb));
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    if (first < 0.0) {
      first = resp.answer.probability;
    } else {
      EXPECT_EQ(std::memcmp(&resp.answer.probability, &first, sizeof(double)),
                0)
          << "threads=" << threads;
    }
  }
}

// --- Serving route --------------------------------------------------------

TEST(RpqServeTest, PreparedAnswersAreBitIdenticalToEngine) {
  ProbabilisticDatabase pdb = SmallKg(3, 3, 12);
  auto q = RpqQuery::Parse("a/(a|b)*/a").MoveValue();
  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kFpras)
                  .Epsilon(0.3)
                  .Seed(0x5e12)
                  .PoolSize(32)
                  .Repetitions(1)
                  .NumThreads(1)
                  .Build();
  ASSERT_TRUE(opts.ok());

  PqeEngine engine(*opts);
  serve::PqeService::Options sopt;
  sopt.engine = *opts;
  sopt.num_threads = 1;
  serve::PqeService service(sopt);

  std::vector<EvalRequest> reqs;
  for (size_t i = 0; i < 6; ++i) {
    EvalRequest r = EvalRequest::ForRpq(q, pdb);
    r.request_id = i + 1;
    r.seed = 0x7777 + i;
    reqs.push_back(r);
  }
  const std::vector<EvalResponse> served = service.EvaluateBatch(reqs);
  ASSERT_EQ(served.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(served[i].status.ok()) << served[i].status.ToString();
    const EvalResponse direct = engine.EvaluateRequest(reqs[i]);
    ASSERT_TRUE(direct.status.ok());
    EXPECT_EQ(std::memcmp(&served[i].answer.probability,
                          &direct.answer.probability, sizeof(double)),
              0)
        << "request " << i;
  }
  // One prepared compile served the whole batch.
  EXPECT_EQ(service.cache().stats().misses, 1u);
  EXPECT_EQ(service.cache().stats().hits, reqs.size() - 1);
}

TEST(RpqServeTest, AutoFallsBackToLineageWhenNotScanOrderable) {
  // Cyclic instance + kAuto: the prepared route reports NotSupported and
  // the service delegates to the engine cascade, which resolves exactly.
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("a", 2).ok());
  Database db(schema);
  ASSERT_TRUE(db.AddFactByName("a", {"v", "v"}).ok());
  ASSERT_TRUE(db.AddFactByName("a", {"v", "w"}).ok());
  ASSERT_TRUE(db.AddFactByName("a", {"w", "v"}).ok());
  std::vector<Probability> probs(3, Probability::Half());
  auto pdb = ProbabilisticDatabase::Make(std::move(db), std::move(probs))
                 .MoveValue();
  auto q = RpqQuery::Parse("a+").MoveValue();

  serve::PqeService::Options sopt;
  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kAuto)
                  .EnumerationThreshold(0)
                  .NumThreads(1)
                  .Build();
  ASSERT_TRUE(opts.ok());
  sopt.engine = *opts;
  sopt.num_threads = 1;
  serve::PqeService service(sopt);
  EvalRequest r = EvalRequest::ForRpq(q, pdb);
  r.request_id = 1;
  const std::vector<EvalResponse> resp = service.EvaluateBatch({r});
  ASSERT_EQ(resp.size(), 1u);
  ASSERT_TRUE(resp[0].status.ok()) << resp[0].status.ToString();
  auto truth = rpq::ExactRpqProbabilityByEnumeration(q, pdb);
  ASSERT_TRUE(truth.ok());
  EXPECT_NEAR(resp[0].answer.probability, truth->ToDouble(), 1e-12);
}

}  // namespace
}  // namespace pqe
