// Tests for the PqeEngine facade: method auto-selection, forcing, and the
// agreement of every strategy on shared instances.

#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <string>

#include "core/engine.h"
#include "cq/parser.h"
#include "cq/ucq.h"
#include "eval/ucq_eval.h"
#include "cq/builders.h"
#include "eval/eval.h"
#include "workload/generators.h"

namespace pqe {
namespace {

// Everything goes through the single EvaluateRequest entry point; these
// helpers unwrap the response envelope for assertion-dense test bodies.
Result<PqeAnswer> EvalQuery(const PqeEngine& engine,
                            const ConjunctiveQuery& query,
                            const ProbabilisticDatabase& pdb) {
  EvalResponse resp =
      engine.EvaluateRequest(EvalRequest::ForQuery(query, pdb));
  if (!resp.status.ok()) return resp.status;
  return std::move(resp.answer);
}

Result<PqeAnswer> EvalUnion(const PqeEngine& engine, const UnionQuery& query,
                            const ProbabilisticDatabase& pdb) {
  EvalResponse resp =
      engine.EvaluateRequest(EvalRequest::ForUnion(query, pdb));
  if (!resp.status.ok()) return resp.status;
  return std::move(resp.answer);
}

Result<double> EvalUr(const PqeEngine& engine, const ConjunctiveQuery& query,
                      const Database& db) {
  EvalResponse resp =
      engine.EvaluateRequest(EvalRequest::ForUniformReliability(query, db));
  if (!resp.status.ok()) return resp.status;
  return resp.answer.probability;
}

ProbabilisticDatabase SmallPathPdb(const QueryInstance& qi, uint64_t seed) {
  LayeredGraphOptions opt;
  opt.width = 2;
  opt.density = 0.8;
  opt.seed = seed;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.seed = seed + 1;
  return AttachProbabilities(std::move(db), pm);
}

TEST(EngineTest, AutoPicksSafePlanForHierarchical) {
  auto star = MakeStarQuery(3).MoveValue();
  StarDataOptions sopt;
  auto db = MakeStarDatabase(star, sopt).MoveValue();
  ProbabilityModel pm;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  PqeEngine engine;
  auto answer = EvalQuery(engine, star.query, pdb).MoveValue();
  EXPECT_EQ(answer.method_used, PqeMethod::kSafePlan);
  EXPECT_TRUE(answer.is_exact);
}

TEST(EngineTest, AutoPicksEnumerationForTinyUnsafe) {
  auto qi = MakePathQuery(3).MoveValue();
  ProbabilisticDatabase pdb = SmallPathPdb(qi, 3);
  ASSERT_LE(pdb.NumFacts(), 16u);
  PqeEngine engine;
  auto answer = EvalQuery(engine, qi.query, pdb).MoveValue();
  EXPECT_EQ(answer.method_used, PqeMethod::kEnumeration);
  EXPECT_TRUE(answer.is_exact);
}

TEST(EngineTest, AutoPicksFprasForLargerUnsafe) {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 0.9;
  opt.seed = 4;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.kind = ProbabilityModel::Kind::kUniformHalf;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  ASSERT_GT(pdb.NumFacts(), 16u);
  PqeEngine::Options opts;
  opts.epsilon = 0.25;
  PqeEngine engine(opts);
  auto answer = EvalQuery(engine, qi.query, pdb);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->method_used, PqeMethod::kFpras);
  EXPECT_FALSE(answer->is_exact);
  EXPECT_FALSE(RenderDiagnostics(*answer).empty());
}

TEST(EngineTest, AllMethodsAgreeOnSharedInstance) {
  auto qi = MakePathQuery(3).MoveValue();
  ProbabilisticDatabase pdb = SmallPathPdb(qi, 7);
  auto truth =
      ExactProbabilityByEnumeration(pdb, qi.query).MoveValue().ToDouble();
  ASSERT_GT(truth, 0.0);
  for (PqeMethod method :
       {PqeMethod::kEnumeration, PqeMethod::kFpras,
        PqeMethod::kKarpLubyLineage, PqeMethod::kExactLineage,
        PqeMethod::kMonteCarlo}) {
    PqeEngine::Options opts;
    opts.method = method;
    opts.epsilon = 0.1;
    opts.seed = 99;
    PqeEngine engine(opts);
    auto answer = EvalQuery(engine, qi.query, pdb);
    ASSERT_TRUE(answer.ok())
        << PqeMethodToString(method) << ": " << answer.status().ToString();
    EXPECT_NEAR(answer->probability / truth, 1.0, 0.3)
        << PqeMethodToString(method);
  }
}

TEST(EngineTest, SafePlanForcedOnUnsafeFails) {
  auto qi = MakePathQuery(3).MoveValue();
  ProbabilisticDatabase pdb = SmallPathPdb(qi, 5);
  PqeEngine::Options opts;
  opts.method = PqeMethod::kSafePlan;
  PqeEngine engine(opts);
  EXPECT_EQ(EvalQuery(engine, qi.query, pdb).status().code(),
            StatusCode::kNotSupported);
}

TEST(EngineTest, UniformReliabilityHelper) {
  auto qi = MakePathQuery(2).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 2;
  opt.density = 0.9;
  opt.seed = 6;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  auto truth = UniformReliabilityByEnumeration(db, qi.query).MoveValue();
  PqeEngine engine;
  auto ur = EvalUr(engine, qi.query, db);
  ASSERT_TRUE(ur.ok());
  EXPECT_DOUBLE_EQ(*ur, truth.ToDouble());
}

TEST(EngineTest, EvaluateUnionAgreesWithEnumeration) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  ASSERT_TRUE(schema.AddRelation("F", 1).ok());
  auto u = ParseUnionQuery(schema, "E(x,y) | F(z)").MoveValue();
  Database db(schema);
  ASSERT_TRUE(db.AddFactByName("E", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("F", {"c"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  PqeEngine engine;
  auto answer = EvalUnion(engine, u, pdb);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->is_exact);
  EXPECT_NEAR(answer->probability, 0.75, 1e-12);  // 1 - (1/2)(1/2)
}

TEST(EngineTest, EvaluateUnionLargerInstanceUsesLineage) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  ASSERT_TRUE(schema.AddRelation("F", 2).ok());
  auto u = ParseUnionQuery(schema, "E(x,y), F(y,z) | F(a,a)").MoveValue();
  RandomDatabaseOptions ropt;
  ropt.domain_size = 4;
  ropt.facts_per_relation = 14;
  ropt.seed = 7;
  auto db = MakeRandomDatabase(schema, ropt).MoveValue();
  ASSERT_GT(db.NumFacts(), 16u);
  ProbabilityModel pm;
  pm.seed = 8;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  PqeEngine engine;
  auto answer = EvalUnion(engine, u, pdb);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->method_used, PqeMethod::kExactLineage);
  // Cross-check against the standalone exact union evaluator.
  auto truth = ExactUnionProbability(u, pdb).MoveValue();
  EXPECT_NEAR(answer->probability, truth.ToDouble(), 1e-9);
}

TEST(EngineTest, MethodNamesAreStable) {
  EXPECT_STREQ(PqeMethodToString(PqeMethod::kFpras), "fpras");
  EXPECT_STREQ(PqeMethodToString(PqeMethod::kMonteCarlo), "monte-carlo");
  EXPECT_STREQ(PqeMethodToString(PqeMethod::kSafePlan), "safe-plan");
  EXPECT_STREQ(PqeMethodToString(PqeMethod::kKarpLubyLineage),
               "karp-luby-lineage");
}

TEST(EngineTest, MethodNamesAreExhaustiveAndDistinct) {
  // kAllPqeMethods must enumerate every PqeMethod; the switch in
  // PqeMethodToString has no default, so a new enumerator that is missing
  // here also trips -Wswitch at compile time.
  std::set<std::string> names;
  for (PqeMethod m : kAllPqeMethods) {
    const char* name = PqeMethodToString(m);
    EXPECT_STRNE(name, "unknown");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), std::size(kAllPqeMethods));
  EXPECT_EQ(names.size(), 7u);
}

TEST(EngineTest, FprasAnswerCarriesStructuredStats) {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 0.9;
  opt.seed = 4;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.kind = ProbabilityModel::Kind::kUniformHalf;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  PqeEngine::Options opts;
  opts.method = PqeMethod::kFpras;
  opts.epsilon = 0.3;
  PqeEngine engine(opts);
  auto answer = EvalQuery(engine, qi.query, pdb);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_TRUE(answer->count_stats.has_value());
  EXPECT_GT(answer->count_stats->pool_entries, 0u);
  ASSERT_TRUE(answer->automaton.has_value());
  EXPECT_GT(answer->automaton->states, 0u);
  EXPECT_GT(answer->automaton->tree_size, 0u);
  EXPECT_FALSE(answer->karp_luby.has_value());
  // The rendered diagnostics line is derived from the same fields.
  const std::string diag = RenderDiagnostics(*answer);
  EXPECT_NE(diag.find("pool_entries="), std::string::npos);
  EXPECT_NE(diag.find("states="), std::string::npos);
}

TEST(EngineTest, KarpLubyAnswerCarriesStructuredStats) {
  auto qi = MakePathQuery(2).MoveValue();
  ProbabilisticDatabase pdb = SmallPathPdb(qi, 5);
  PqeEngine::Options opts;
  opts.method = PqeMethod::kKarpLubyLineage;
  PqeEngine engine(opts);
  auto answer = EvalQuery(engine, qi.query, pdb);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  ASSERT_TRUE(answer->karp_luby.has_value());
  EXPECT_GT(answer->karp_luby->samples, 0u);
  EXPECT_FALSE(answer->count_stats.has_value());
  EXPECT_NE(RenderDiagnostics(*answer).find("samples="), std::string::npos);
}

}  // namespace
}  // namespace pqe
