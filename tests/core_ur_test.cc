// Tests for the Proposition 1 construction and Theorem 3 (UREstimate): the
// bijection between accepted trees of size |D'| and satisfying subinstances,
// across the paper's query families.

#include <gtest/gtest.h>

#include "core/ur_construction.h"
#include "cq/builders.h"
#include "eval/eval.h"
#include "workload/generators.h"

namespace pqe {
namespace {

TEST(UrConstructionTest, RejectsSelfJoins) {
  auto sj = MakeSelfJoinPathQuery(2).MoveValue();
  Database db(sj.schema);
  ASSERT_TRUE(db.AddFactByName("R", {"a", "b"}).ok());
  UrConstructionOptions opts;
  EXPECT_EQ(BuildUrAutomaton(sj.query, db, opts).status().code(),
            StatusCode::kNotSupported);
}

TEST(UrConstructionTest, RejectsWidthBeyondBudget) {
  auto cyc = MakeCycleQuery(4).MoveValue();
  Database db(cyc.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  UrConstructionOptions opts;
  opts.max_width = 1;
  EXPECT_EQ(BuildUrAutomaton(cyc.query, db, opts).status().code(),
            StatusCode::kNotSupported);
}

TEST(UrConstructionTest, EmptyDatabaseGivesZero) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  auto ur = UrExactViaAutomaton(qi.query, db);
  ASSERT_TRUE(ur.ok());
  EXPECT_EQ(ur->ToDecimalString(), "0");
}

TEST(UrConstructionTest, TreeSizeIsProjectedFactCount) {
  auto qi = MakePathQuery(2).MoveValue();
  Schema schema = qi.schema;
  ASSERT_TRUE(schema.AddRelation("Noise", 1).ok());
  Database db(schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "c"}).ok());
  ASSERT_TRUE(db.AddFactByName("Noise", {"n"}).ok());
  UrConstructionOptions opts;
  auto automaton = BuildUrAutomaton(qi.query, db, opts);
  ASSERT_TRUE(automaton.ok());
  EXPECT_EQ(automaton->tree_size, 2u);
  EXPECT_EQ(automaton->dropped_facts, 1u);
  // UR = 1 subinstance of D' times 2 for the free noise fact.
  EXPECT_EQ(UrExactViaAutomaton(qi.query, db)->ToDecimalString(), "2");
}

TEST(UrConstructionTest, DecompositionIsBinarizedAndComplete) {
  auto star = MakeStarQuery(5).MoveValue();
  StarDataOptions sopt;
  sopt.hubs = 2;
  sopt.spokes_per_hub = 1;
  sopt.seed = 3;
  auto db = MakeStarDatabase(star, sopt).MoveValue();
  UrConstructionOptions opts;
  auto automaton = BuildUrAutomaton(star.query, db, opts).MoveValue();
  for (uint32_t p = 0; p < automaton.hd.NumNodes(); ++p) {
    EXPECT_LE(automaton.hd.node(p).children.size(), 2u);
  }
  EXPECT_TRUE(automaton.hd.IsComplete(star.query));
}

// ---------------------------------------------------------------------------
// The bijection property across query families and random databases.
// ---------------------------------------------------------------------------

enum class Family {
  kPath2,
  kPath3,
  kStar3,
  kH0,
  kCycle3,
  kCaterpillar2,
  kSnowflake22
};

struct UrCase {
  Family family;
  uint64_t seed;
};

QueryInstance MakeFamily(Family family) {
  switch (family) {
    case Family::kPath2:
      return MakePathQuery(2).MoveValue();
    case Family::kPath3:
      return MakePathQuery(3).MoveValue();
    case Family::kStar3:
      return MakeStarQuery(3).MoveValue();
    case Family::kH0:
      return MakeH0Query().MoveValue();
    case Family::kCycle3:
      return MakeCycleQuery(3).MoveValue();
    case Family::kCaterpillar2:
      return MakeCaterpillarQuery(2).MoveValue();
    case Family::kSnowflake22:
      return MakeSnowflakeQuery(2, 2).MoveValue();
  }
  return MakePathQuery(1).MoveValue();
}

class UrBijection : public ::testing::TestWithParam<UrCase> {};

TEST_P(UrBijection, AutomatonCountMatchesEnumeration) {
  const UrCase& c = GetParam();
  QueryInstance qi = MakeFamily(c.family);
  RandomDatabaseOptions ropt;
  ropt.domain_size = 3;
  ropt.facts_per_relation = 3;
  ropt.seed = c.seed;
  auto db = MakeRandomDatabase(qi.schema, ropt).MoveValue();
  if (db.NumFacts() > 16) GTEST_SKIP();
  auto truth = UniformReliabilityByEnumeration(db, qi.query);
  ASSERT_TRUE(truth.ok());
  UrConstructionOptions opts;
  auto via_automaton = UrExactViaAutomaton(qi.query, db, opts);
  ASSERT_TRUE(via_automaton.ok()) << via_automaton.status().ToString();
  EXPECT_EQ(via_automaton->ToDecimalString(), truth->ToDecimalString())
      << "seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Families, UrBijection,
    ::testing::Values(
        UrCase{Family::kPath2, 1}, UrCase{Family::kPath2, 2},
        UrCase{Family::kPath3, 3}, UrCase{Family::kPath3, 4},
        UrCase{Family::kStar3, 5}, UrCase{Family::kStar3, 6},
        UrCase{Family::kH0, 7}, UrCase{Family::kH0, 8},
        UrCase{Family::kCycle3, 9}, UrCase{Family::kCycle3, 10},
        UrCase{Family::kCaterpillar2, 11}, UrCase{Family::kCaterpillar2, 12},
        UrCase{Family::kPath3, 13}, UrCase{Family::kH0, 14},
        UrCase{Family::kCycle3, 15}, UrCase{Family::kStar3, 16},
        UrCase{Family::kSnowflake22, 17}, UrCase{Family::kSnowflake22, 18}));

// Theorem 3's estimator lands near the truth.
TEST(UrEstimateTest, EstimateWithinBand) {
  auto qi = MakeH0Query().MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R", {"a"}).ok());
  ASSERT_TRUE(db.AddFactByName("R", {"b"}).ok());
  ASSERT_TRUE(db.AddFactByName("S", {"a", "u"}).ok());
  ASSERT_TRUE(db.AddFactByName("S", {"b", "u"}).ok());
  ASSERT_TRUE(db.AddFactByName("S", {"b", "v"}).ok());
  ASSERT_TRUE(db.AddFactByName("T", {"u"}).ok());
  ASSERT_TRUE(db.AddFactByName("T", {"v"}).ok());
  auto truth = UniformReliabilityByEnumeration(db, qi.query).MoveValue();
  EstimatorConfig cfg;
  cfg.epsilon = 0.1;
  cfg.seed = 77;
  auto est = UrEstimate(qi.query, db, cfg);
  ASSERT_TRUE(est.ok());
  const double t = truth.ToDouble();
  EXPECT_GT(est->ur.ToDouble(), t / 1.3);
  EXPECT_LT(est->ur.ToDouble(), t * 1.3);
  EXPECT_EQ(est->tree_size, 7u);
  EXPECT_EQ(est->decomposition_width, 1u);
}

// Determinism: same seed, same estimate.
TEST(UrEstimateTest, DeterministicForSeed) {
  auto qi = MakePathQuery(2).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 2;
  opt.seed = 4;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  EstimatorConfig cfg;
  cfg.epsilon = 0.2;
  cfg.seed = 123;
  auto a = UrEstimate(qi.query, db, cfg);
  auto b = UrEstimate(qi.query, db, cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ur.Compare(b->ur), 0);
}

}  // namespace
}  // namespace pqe
