// Tests for the observability layer (src/obs): span trees, the metric
// registry, JSON export, and the end-to-end pipeline trace.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "counting/config.h"
#include "cq/builders.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/generators.h"

namespace pqe {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON syntax checker (RFC 8259 subset: no
// surrogate-pair validation). Enough to prove the hand-rolled writer emits
// well-formed documents without pulling in a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') return ++pos_, true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') return ++pos_, true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson(R"({"a": [1, 2.5, -3e2], "b": {"c": "x\n"}})"));
  EXPECT_TRUE(IsValidJson("[true, false, null]"));
  EXPECT_FALSE(IsValidJson(R"({"a": 1,})"));
  EXPECT_FALSE(IsValidJson(R"({"a" 1})"));
  EXPECT_FALSE(IsValidJson("[1, 2"));
  EXPECT_FALSE(IsValidJson(""));
}

// ---------------------------------------------------------------------------
// Span trees.

TEST(TraceTest, NestedSpansBuildTreeInOrder) {
  obs::TraceSession session("root");
  ASSERT_TRUE(session.active());
  {
    PQE_TRACE_SPAN_VAR(outer, "outer");
    outer.AttrUint("n", 7);
    { PQE_TRACE_SPAN("inner_a"); }
    {
      PQE_TRACE_SPAN_VAR(inner, "inner_b");
      inner.AttrText("label", "second");
    }
  }
  { PQE_TRACE_SPAN("sibling"); }
  obs::RunTrace trace = session.Finish();

  if (!obs::TracingCompiledIn()) {
    EXPECT_EQ(trace.root.name, "root");
    EXPECT_TRUE(trace.root.children.empty());
    return;
  }
  ASSERT_EQ(trace.root.children.size(), 2u);
  const obs::TraceSpan& outer = trace.root.children[0];
  EXPECT_EQ(outer.name, "outer");
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0].name, "inner_a");
  EXPECT_EQ(outer.children[1].name, "inner_b");
  EXPECT_EQ(trace.root.children[1].name, "sibling");
  EXPECT_EQ(trace.root.TreeSize(), 5u);

  const obs::TraceAttr* n = outer.FindAttr("n");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->u, 7u);
  const obs::TraceSpan* inner_b = trace.root.Find("inner_b");
  ASSERT_NE(inner_b, nullptr);
  ASSERT_NE(inner_b->FindAttr("label"), nullptr);
  EXPECT_EQ(inner_b->FindAttr("label")->text, "second");
  // Children start within the parent and nest chronologically.
  EXPECT_LE(outer.start_ns, outer.children[0].start_ns);
  EXPECT_LE(outer.children[0].start_ns, outer.children[1].start_ns);
  EXPECT_GE(trace.root.duration_ns, outer.duration_ns);
}

TEST(TraceTest, SpansWithoutSessionAreNoOps) {
  PQE_TRACE_SPAN_VAR(span, "orphan");
  span.AttrUint("ignored", 1);
  EXPECT_FALSE(span.active());
}

TEST(TraceTest, NestedSessionIsInert) {
  obs::TraceSession outer("outer_root");
  {
    obs::TraceSession inner("inner_root");
    EXPECT_FALSE(inner.active());
    PQE_TRACE_SPAN("during_inner");
  }
  obs::RunTrace trace = outer.Finish();
  EXPECT_EQ(trace.root.name, "outer_root");
  if (obs::TracingCompiledIn()) {
    // The span landed in the outer session, not the inert inner one.
    EXPECT_NE(trace.root.Find("during_inner"), nullptr);
  }
}

// ---------------------------------------------------------------------------
// Metrics.

TEST(MetricsTest, CountersAreSharedAcrossThreads) {
  obs::MetricRegistry registry;
  constexpr uint64_t kPerThread = 50'000;
  auto bump = [&registry]() {
    obs::Counter& c = registry.GetCounter("test.shared");
    for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
  };
  std::thread t1(bump);
  std::thread t2(bump);
  t1.join();
  t2.join();
  EXPECT_EQ(registry.Snapshot().CounterValue("test.shared"), 2 * kPerThread);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  obs::MetricRegistry registry;
  obs::Histogram& h = registry.GetHistogram("test.hist");
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);   // bits=3 → bucket 3, range [4, 7]
  h.Observe(7);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 13u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketUpperBound(3), 7u);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  const auto* entry = snap.FindHistogram("test.hist");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->count, 4u);
}

TEST(MetricsTest, ResetZeroesButKeepsHandles) {
  obs::MetricRegistry registry;
  obs::Counter& c = registry.GetCounter("test.reset");
  registry.GetGauge("test.gauge").Set(2.5);
  c.Add(9);
  registry.Reset();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(registry.Snapshot().CounterValue("test.reset"), 0u);
  c.Increment();
  EXPECT_EQ(registry.Snapshot().CounterValue("test.reset"), 1u);
}

TEST(MetricsTest, HistogramQuantilesInterpolateWithinBuckets) {
  obs::MetricRegistry registry;
  obs::Histogram& h = registry.GetHistogram("test.q");
  // 100 samples all in bucket 7 (range [64, 127]): quantiles interpolate
  // linearly across the bucket's value range.
  for (uint64_t i = 0; i < 100; ++i) h.Observe(64 + i % 64);
  const obs::MetricsSnapshot::HistogramEntry entry =
      obs::MetricsSnapshot::SnapshotHistogram("test.q", h);
  const double p50 = entry.Quantile(0.50);
  const double p99 = entry.Quantile(0.99);
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 127.0);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 127.0);
  // q=0 clamps to the first sample; q>=1 is the top bucket's upper bound.
  EXPECT_GE(entry.Quantile(0.0), 64.0);
  EXPECT_EQ(entry.Quantile(1.0), 127.0);
}

TEST(MetricsTest, HistogramQuantilesAcrossBuckets) {
  obs::MetricRegistry registry;
  obs::Histogram& h = registry.GetHistogram("test.q2");
  // 90 fast samples (value 1) and 10 slow ones (value 1000): the p50 sits
  // in the fast bucket, the p99 in the slow one.
  for (int i = 0; i < 90; ++i) h.Observe(1);
  for (int i = 0; i < 10; ++i) h.Observe(1000);
  const obs::MetricsSnapshot::HistogramEntry entry =
      obs::MetricsSnapshot::SnapshotHistogram("test.q2", h);
  EXPECT_EQ(entry.Quantile(0.50), 1.0);
  EXPECT_GE(entry.Quantile(0.99), 512.0);
  EXPECT_LE(entry.Quantile(0.99), 1023.0);

  const obs::MetricsSnapshot::HistogramEntry empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
}

TEST(MetricsTest, EmptyHistogramQuantilesAreZeroAtEveryQ) {
  // Regression guard for the count == 0 path: every q — including the
  // q >= 1 branch, which otherwise indexes the top bucket — must return 0
  // instead of reading an empty bucket vector.
  const obs::MetricsSnapshot::HistogramEntry empty;
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(empty.Quantile(q), 0.0) << q;
  }
  // A histogram that saw traffic and was then Reset() snapshots as empty
  // and must behave the same.
  obs::MetricRegistry registry;
  obs::Histogram& h = registry.GetHistogram("test.q3");
  for (int i = 0; i < 10; ++i) h.Observe(100);
  h.Reset();
  const obs::MetricsSnapshot::HistogramEntry entry =
      obs::MetricsSnapshot::SnapshotHistogram("test.q3", h);
  EXPECT_EQ(entry.count, 0u);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(entry.Quantile(q), 0.0) << q;
  }
}

// The documented relaxed-atomics contract (obs/metrics.h): Snapshot() and
// Reset() may interleave with hot-path Add()/Observe() calls without locks.
// Values are never torn and every add lands in some pre- or post-reset
// state; a snapshot is NOT a point-in-time cut. Running this under the TSan
// CI stage is what proves the contract — the assertions here only pin down
// "no torn/lost values within one epoch".
TEST(MetricsTest, SnapshotAndResetRaceWithHotPathAdds) {
  obs::MetricRegistry registry;
  obs::Counter& counter = registry.GetCounter("race.count");
  obs::Histogram& hist = registry.GetHistogram("race.hist");
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&counter, &hist, &stop]() {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter.Add(3);
        hist.Observe(i++ % 1024);
      }
    });
  }

  for (int round = 0; round < 200; ++round) {
    const obs::MetricsSnapshot snap = registry.Snapshot();
    // Counter adds are multiples of 3, so any observed value must be too —
    // a torn read would almost surely break this.
    EXPECT_EQ(snap.CounterValue("race.count") % 3, 0u);
    if (round % 50 == 49) registry.Reset();
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();

  registry.Reset();
  counter.Add(3);
  EXPECT_EQ(registry.Snapshot().CounterValue("race.count"), 3u);
}

// ---------------------------------------------------------------------------
// JSON export.

TEST(ExportTest, TraceJsonIsValidAndEscaped) {
  obs::TraceSession session("root");
  {
    PQE_TRACE_SPAN_VAR(span, "stage.one");
    span.AttrText("tricky", "quote\" backslash\\ newline\n tab\t");
    span.AttrUint("count", 42);
    span.AttrFloat("ratio", 0.5);
    span.AttrInt("delta", -3);
  }
  obs::RunTrace trace = session.Finish();
  const std::string json = obs::TraceToJson(trace);
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"root\""), std::string::npos);
  if (obs::TracingCompiledIn()) {
    EXPECT_NE(json.find("stage.one"), std::string::npos);
    EXPECT_NE(json.find("\\\""), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
  }
  // The text rendering mentions every span name as well.
  const std::string text = obs::RenderTraceText(trace);
  EXPECT_NE(text.find("root"), std::string::npos);
}

TEST(ExportTest, NonFiniteDoublesSerializeAsNull) {
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Key("inf").Double(1.0 / 0.0);
  writer.Key("neg").Double(-1.0 / 0.0);
  writer.Key("nan").Double(0.0 / 0.0);
  writer.EndObject();
  const std::string json = writer.Take();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_EQ(json, R"({"inf":null,"neg":null,"nan":null})");
}

TEST(ExportTest, FiniteDoublesRoundTripBitExact) {
  // JsonWriter::Double emits max_digits10 significant digits and ParseJson
  // reads back through strtod — both directions correctly rounded, so every
  // finite double round-trips to the identical bit pattern.
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           0.1,
                           1.0 / 3.0,
                           0.59999999999999942,
                           0.93413926825981919,
                           1e-308,
                           1.7976931348623157e308,
                           -2.2250738585072014e-308};
  for (const double v : values) {
    obs::JsonWriter writer;
    writer.BeginArray();
    writer.Double(v);
    writer.EndArray();
    auto doc = obs::ParseJson(writer.Take());
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    ASSERT_EQ(doc->Items().size(), 1u);
    const double back = doc->Items()[0].AsNumber();
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0)
        << v << " round-tripped to " << back;
  }
}

TEST(ExportTest, ParseJsonHandlesEscapesAndRejectsGarbage) {
  auto doc = obs::ParseJson(
      R"({"s":"a\"b\\c\nd\u0041\u00e9","arr":[1,-2.5,true,null],"n":{}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* s = doc->Find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->AsString(), "a\"b\\c\nd"
                           "A\xc3\xa9");
  const obs::JsonValue* arr = doc->Find("arr");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->Items().size(), 4u);
  EXPECT_EQ(arr->Items()[0].AsNumber(), 1.0);
  EXPECT_EQ(arr->Items()[1].AsNumber(), -2.5);
  EXPECT_TRUE(arr->Items()[2].AsBool());
  EXPECT_EQ(arr->Items()[3].kind(), obs::JsonValue::Kind::kNull);

  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("[1,]").ok());
  EXPECT_FALSE(obs::ParseJson("01").ok());
  EXPECT_FALSE(obs::ParseJson("{} trailing").ok());
  EXPECT_FALSE(obs::ParseJson("\"\\ud800\"").ok());  // lone surrogate
}

TEST(ExportTest, OpenMetricsExpositionShape) {
  obs::MetricRegistry registry;
  registry.GetCounter("serve.requests").Add(7);
  registry.GetCounter("pqe.strata_total").Add(3);  // already ends in _total
  registry.GetGauge("bench.speedup-warm").Set(12.5);
  obs::Histogram& h = registry.GetHistogram("serve.request_ms");
  h.Observe(1);
  h.Observe(5);
  h.Observe(9);
  const std::string om = obs::MetricsToOpenMetrics(registry.Snapshot());

  // Names are sanitized to [a-zA-Z0-9_:].
  EXPECT_NE(om.find("# TYPE serve_requests counter\n"), std::string::npos);
  EXPECT_NE(om.find("serve_requests_total 7\n"), std::string::npos);
  // A source name already ending in _total is not double-suffixed.
  EXPECT_NE(om.find("pqe_strata_total 3\n"), std::string::npos);
  EXPECT_EQ(om.find("_total_total"), std::string::npos);
  EXPECT_NE(om.find("# TYPE bench_speedup_warm gauge\n"), std::string::npos);
  // Histogram: cumulative buckets, +Inf, sum, count.
  EXPECT_NE(om.find("# TYPE serve_request_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(om.find("serve_request_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(om.find("serve_request_ms_bucket{le=\"7\"} 2\n"),
            std::string::npos);
  EXPECT_NE(om.find("serve_request_ms_bucket{le=\"15\"} 3\n"),
            std::string::npos);
  EXPECT_NE(om.find("serve_request_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(om.find("serve_request_ms_sum 15\n"), std::string::npos);
  EXPECT_NE(om.find("serve_request_ms_count 3\n"), std::string::npos);
  // The exposition terminates with the OpenMetrics EOF marker.
  const std::string tail = "# EOF\n";
  ASSERT_GE(om.size(), tail.size());
  EXPECT_EQ(om.substr(om.size() - tail.size()), tail);
}

TEST(ExportTest, MetricsJsonIsValid) {
  obs::MetricRegistry registry;
  registry.GetCounter("a.count").Add(3);
  registry.GetGauge("a.gauge").Set(1.25);
  registry.GetHistogram("a.hist").Observe(9);
  const std::string json = obs::MetricsToJson(registry.Snapshot());
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"a.hist\""), std::string::npos);
}

TEST(ExportTest, CountStatsJsonCoversEveryField) {
  CountStats stats;
  stats.strata_total = 10;
  stats.strata_live = 4;
  stats.pool_entries = 3;
  stats.attempts = 2;
  stats.accepted = 1;
  stats.forced_samples = 5;
  stats.membership_checks = 6;
  const std::string json = obs::StatsToJson(stats);
  EXPECT_TRUE(IsValidJson(json)) << json;
  // Field list driven by the same X-macro as the struct definition, so this
  // stays exhaustive by construction.
#define PQE_EXPECT_FIELD(field)                                  \
  EXPECT_NE(json.find("\"" #field "\""), std::string::npos) << json;
  PQE_COUNT_STATS_FIELDS(PQE_EXPECT_FIELD)
#undef PQE_EXPECT_FIELD
}

// ---------------------------------------------------------------------------
// End-to-end: a kFpras evaluation produces the documented span tree.

TEST(PipelineTraceTest, FprasEvaluationEmitsExpectedSpans) {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 0.9;
  opt.seed = 4;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.kind = ProbabilityModel::Kind::kUniformHalf;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

  PqeEngine::Options opts;
  opts.method = PqeMethod::kFpras;
  opts.epsilon = 0.3;
  opts.collect_trace = true;
  PqeEngine engine(opts);
  const EvalResponse resp =
      engine.EvaluateRequest(EvalRequest::ForQuery(qi.query, pdb));
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  const PqeAnswer* answer = &resp.answer;

  ASSERT_NE(answer->trace, nullptr);
  const obs::TraceSpan& root = answer->trace->root;
  EXPECT_EQ(root.name, "engine.evaluate");
  EXPECT_GT(root.duration_ns, 0u);
  const std::string json = obs::TraceToJson(*answer->trace);
  EXPECT_TRUE(IsValidJson(json)) << json;

  if (!obs::TracingCompiledIn()) return;
  ASSERT_NE(root.FindAttr("method"), nullptr);
  EXPECT_EQ(root.FindAttr("method")->text, "fpras");
  // A 3-atom path query takes the string specialization; both branches end
  // in a multiplier translation and a counting loop with recorded stats.
  EXPECT_NE(root.Find("pqe.multiplier_translate"), nullptr);
  const bool string_path = root.Find("path.estimate") != nullptr;
  const obs::TraceSpan* count =
      root.Find(string_path ? "count.nfa" : "count.nfta");
  ASSERT_NE(count, nullptr);
  ASSERT_NE(count->FindAttr("attempts"), nullptr);
  ASSERT_NE(count->FindAttr("membership_checks"), nullptr);
  if (!string_path) {
    EXPECT_NE(root.Find("hd.decompose"), nullptr);
    EXPECT_NE(root.Find("nfta.translate"), nullptr);
  }
}

TEST(PipelineTraceTest, TreeFprasEvaluationEmitsDecompositionSpans) {
  // A non-path query (shared first variable) exercises the hypertree → NFTA
  // branch of the pipeline.
  auto star = MakeStarQuery(2).MoveValue();
  StarDataOptions sopt;
  auto db = MakeStarDatabase(star, sopt).MoveValue();
  ProbabilityModel pm;
  pm.kind = ProbabilityModel::Kind::kUniformHalf;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

  PqeEngine::Options opts;
  opts.method = PqeMethod::kFpras;
  opts.epsilon = 0.4;
  opts.collect_trace = true;
  PqeEngine engine(opts);
  const EvalResponse resp =
      engine.EvaluateRequest(EvalRequest::ForQuery(star.query, pdb));
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  const PqeAnswer* answer = &resp.answer;
  ASSERT_NE(answer->trace, nullptr);
  if (!obs::TracingCompiledIn()) return;
  const obs::TraceSpan& root = answer->trace->root;
  EXPECT_NE(root.Find("pqe.estimate"), nullptr);
  EXPECT_NE(root.Find("pqe.build_automaton"), nullptr);
  EXPECT_NE(root.Find("hd.decompose"), nullptr);
  EXPECT_NE(root.Find("nfta.translate"), nullptr);
  EXPECT_NE(root.Find("nfta.trim"), nullptr);
  EXPECT_NE(root.Find("pqe.multiplier_translate"), nullptr);
  EXPECT_NE(root.Find("count.nfta"), nullptr);
}

TEST(PipelineTraceTest, TraceAbsentWhenNotRequested) {
  auto qi = MakePathQuery(2).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 2;
  opt.seed = 11;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  PqeEngine engine;
  const EvalResponse resp =
      engine.EvaluateRequest(EvalRequest::ForQuery(qi.query, pdb));
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  const PqeAnswer& answer = resp.answer;
  EXPECT_EQ(answer.trace, nullptr);
  EXPECT_FALSE(RenderDiagnostics(answer).empty());
}

}  // namespace
}  // namespace pqe
