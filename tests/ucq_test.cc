// Tests for unions of conjunctive queries: parsing, satisfaction, union
// lineage, and agreement between the exact/approximate union evaluators.

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "cq/ucq.h"
#include "eval/ucq_eval.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace {

Schema GraphSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddRelation("E", 2).ok());
  EXPECT_TRUE(schema.AddRelation("F", 2).ok());
  EXPECT_TRUE(schema.AddRelation("L", 1).ok());
  return schema;
}

TEST(UnionQueryTest, ParseAndRender) {
  Schema schema = GraphSchema();
  auto u = ParseUnionQuery(schema, "E(x,y), L(x) | F(u,v)");
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_EQ(u->NumDisjuncts(), 2u);
  EXPECT_EQ(u->ToString(schema), "E(x,y), L(x) | F(u,v)");
  EXPECT_TRUE(u->AllDisjunctsSelfJoinFree());
  EXPECT_FALSE(ParseUnionQuery(schema, "E(x,y) |").ok());
  EXPECT_FALSE(ParseUnionQuery(schema, "").ok());
}

TEST(UnionQueryTest, MakeRequiresDisjuncts) {
  EXPECT_FALSE(UnionQuery::Make({}).ok());
}

TEST(UnionEvalTest, SatisfactionIsDisjunction) {
  Schema schema = GraphSchema();
  auto u = ParseUnionQuery(schema, "E(x,y), L(y) | F(u,u)").MoveValue();
  Database db(schema);
  ASSERT_TRUE(db.AddFactByName("E", {"a", "b"}).ok());
  // Neither disjunct holds yet (no L(b), no F self-loop).
  EXPECT_FALSE(SatisfiesUnion(db, u).value());
  ASSERT_TRUE(db.AddFactByName("F", {"c", "c"}).ok());
  EXPECT_TRUE(SatisfiesUnion(db, u).value());
}

TEST(UnionEvalTest, LineageIsDeduplicatedUnion) {
  Schema schema = GraphSchema();
  // Both disjuncts can produce the same clause {E(a,b)}.
  auto u = ParseUnionQuery(schema, "E(x,y) | E(u,v)").MoveValue();
  Database db(schema);
  ASSERT_TRUE(db.AddFactByName("E", {"a", "b"}).ok());
  auto lineage = BuildUnionLineage(u, db).MoveValue();
  EXPECT_EQ(lineage.NumClauses(), 1u);
}

class UnionAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionAgreement, ExactMethodsAgreeAndKarpLubyTracks) {
  const uint64_t seed = GetParam();
  Schema schema = GraphSchema();
  auto u = ParseUnionQuery(schema, "E(x,y), F(y,z) | E(x,y), L(y) | F(a,a)")
               .MoveValue();
  RandomDatabaseOptions ropt;
  ropt.domain_size = 3;
  ropt.facts_per_relation = 4;
  ropt.seed = seed * 7 + 1;
  auto db = MakeRandomDatabase(schema, ropt).MoveValue();
  if (db.NumFacts() > 14) GTEST_SKIP();
  ProbabilityModel pm;
  pm.seed = seed * 3 + 5;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

  auto truth = ExactUnionProbabilityByEnumeration(pdb, u).MoveValue();
  auto via_lineage = ExactUnionProbability(u, pdb).MoveValue();
  EXPECT_EQ(via_lineage.Compare(truth), 0) << "seed=" << seed;

  const double t = truth.ToDouble();
  if (t > 0.0) {
    KarpLubyConfig cfg;
    cfg.epsilon = 0.05;
    cfg.seed = seed * 11 + 3;
    auto kl = KarpLubyUnionPqe(u, pdb, cfg).MoveValue();
    EXPECT_NEAR(kl.probability / t, 1.0, 0.2) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionAgreement,
                         ::testing::Range<uint64_t>(1, 13));

TEST(UnionEvalTest, SingleDisjunctMatchesCqPath) {
  Schema schema = GraphSchema();
  auto cq = ParseQuery(schema, "E(x,y), L(y)").MoveValue();
  auto u = UnionQuery::Make({cq}).MoveValue();
  Database db(schema);
  ASSERT_TRUE(db.AddFactByName("E", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("L", {"b"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  auto union_p = ExactUnionProbability(u, pdb).MoveValue();
  EXPECT_EQ(union_p.Normalized().ToString(), "1/4");
}

}  // namespace
}  // namespace pqe
