// The serving layer's contract (docs/serving.md): prepared answers are
// bit-identical to cold engine evaluation, the content-keyed cache
// hits/misses/evicts deterministically, deadlines surface as typed statuses
// (never hangs, never throws), and the Options::Builder rejects invalid
// configurations up front.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "cq/builders.h"
#include "obs/trace.h"
#include "serve/prepared_cache.h"
#include "serve/prepared_query.h"
#include "serve/service.h"
#include "serve/telemetry.h"
#include "util/cancel.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace {

PqeEngine::Options ServeOptions() {
  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kFpras)
                  .Epsilon(0.3)
                  .Seed(0xfeed)
                  .PoolSize(48)
                  .Repetitions(1)
                  .NumThreads(1)
                  .Build();
  EXPECT_TRUE(opts.ok()) << opts.status().ToString();
  return *opts;
}

// A path-route instance (string specialization) with selectable labelling.
struct PathFixture {
  QueryInstance qi;
  ProbabilisticDatabase pdb;
};

PathFixture MakePathFixture(uint64_t prob_seed) {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 1.0;
  opt.seed = 7;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = prob_seed;
  return {std::move(qi), AttachProbabilities(std::move(db), pm)};
}

// A tree-route instance (generic NFTA pipeline; star queries are not path
// queries).
PathFixture MakeStarFixture() {
  auto qi = MakeStarQuery(3).MoveValue();
  StarDataOptions opt;
  opt.hubs = 2;
  opt.spokes_per_hub = 2;
  opt.density = 1.0;
  opt.seed = 5;
  auto db = MakeStarDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = 11;
  return {std::move(qi), AttachProbabilities(std::move(db), pm)};
}

void ExpectSameAnswer(const PqeAnswer& a, const PqeAnswer& b) {
  EXPECT_EQ(a.probability, b.probability);
  EXPECT_EQ(a.method_used, b.method_used);
  ASSERT_EQ(a.count_stats.has_value(), b.count_stats.has_value());
  if (a.count_stats.has_value()) {
    EXPECT_EQ(a.count_stats->ToString(), b.count_stats->ToString());
  }
}

// --- Options::Builder validation -----------------------------------------

TEST(OptionsBuilderTest, RejectsOutOfRangeEpsilon) {
  EXPECT_FALSE(PqeEngine::Options::Builder().Epsilon(0.0).Build().ok());
  EXPECT_FALSE(PqeEngine::Options::Builder().Epsilon(1.0).Build().ok());
  EXPECT_FALSE(PqeEngine::Options::Builder().Epsilon(-0.5).Build().ok());
  EXPECT_TRUE(PqeEngine::Options::Builder().Epsilon(0.5).Build().ok());
}

TEST(OptionsBuilderTest, RejectsZeroMaxWidth) {
  auto bad = PqeEngine::Options::Builder().MaxWidth(0).Build();
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(PqeEngine::Options::Builder().MaxWidth(1).Build().ok());
}

TEST(OptionsBuilderTest, RejectsInconsistentPoolBounds) {
  EXPECT_FALSE(PqeEngine::Options::Builder()
                   .PoolSize(100)
                   .MaxPoolSize(50)
                   .Build()
                   .ok());
  EXPECT_FALSE(PqeEngine::Options::Builder().Repetitions(0).Build().ok());
}

// --- EvaluateRequest ------------------------------------------------------

TEST(EvaluateRequestTest, RepeatedRequestsAreBitIdentical) {
  // The request envelope (with defaults) is the engine's only entry point;
  // identical requests must produce identical answers.
  PathFixture fx = MakePathFixture(100);
  PqeEngine engine(ServeOptions());
  const EvalResponse first =
      engine.EvaluateRequest(EvalRequest::ForQuery(fx.qi.query, fx.pdb));
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  const EvalResponse resp =
      engine.EvaluateRequest(EvalRequest::ForQuery(fx.qi.query, fx.pdb));
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  ExpectSameAnswer(resp.answer, first.answer);
}

TEST(EvaluateRequestTest, RejectsMissingPointers) {
  PqeEngine engine(ServeOptions());
  EvalRequest r;
  r.target = EvalRequest::Target::kQuery;
  const EvalResponse resp = engine.EvaluateRequest(r);
  EXPECT_EQ(resp.status.code(), StatusCode::kInvalidArgument);
}

// --- Service vs cold engine ----------------------------------------------

TEST(ServeTest, ServedAnswerMatchesColdEngine) {
  PathFixture fx = MakePathFixture(100);
  const PqeEngine::Options opts = ServeOptions();

  EvalRequest r = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
  r.request_id = 1;
  r.seed = 0xabc;

  PqeEngine engine(opts);
  const EvalResponse cold = engine.EvaluateRequest(r);
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();

  serve::PqeService::Options sopt;
  sopt.engine = opts;
  sopt.num_threads = 1;
  serve::PqeService service(sopt);
  const EvalResponse served = service.Evaluate(r);
  ASSERT_TRUE(served.status.ok()) << served.status.ToString();
  EXPECT_EQ(served.answer.method_used, PqeMethod::kFpras);
  ExpectSameAnswer(served.answer, cold.answer);
}

TEST(ServeTest, TreeRouteServesThroughPreparedCacheToo) {
  PathFixture fx = MakeStarFixture();
  const PqeEngine::Options opts = ServeOptions();
  EvalRequest r = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
  r.seed = 0xabc;

  PqeEngine engine(opts);
  const EvalResponse cold = engine.EvaluateRequest(r);
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();

  serve::PqeService::Options sopt;
  sopt.engine = opts;
  serve::PqeService service(sopt);
  const EvalResponse served = service.Evaluate(r);
  ASSERT_TRUE(served.status.ok()) << served.status.ToString();
  ExpectSameAnswer(served.answer, cold.answer);
  EXPECT_EQ(service.cache().stats().misses, 1u);
}

TEST(ServeTest, SeedlessRequestsDeriveFromRequestId) {
  // The documented contract: a request without a seed runs at
  // DeriveSeed(service seed, request_id), so batch members are independent
  // yet individually reproducible.
  PathFixture fx = MakePathFixture(100);
  const PqeEngine::Options opts = ServeOptions();

  serve::PqeService::Options sopt;
  sopt.engine = opts;
  serve::PqeService service(sopt);
  EvalRequest anon = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
  anon.request_id = 5;
  const EvalResponse served = service.Evaluate(anon);
  ASSERT_TRUE(served.status.ok()) << served.status.ToString();

  PqeEngine engine(opts);
  EvalRequest pinned = anon;
  pinned.seed = Rng::DeriveSeed(opts.seed, 5);
  const EvalResponse cold = engine.EvaluateRequest(pinned);
  ASSERT_TRUE(cold.status.ok());
  ExpectSameAnswer(served.answer, cold.answer);
}

// --- PreparedCache: hit / miss / eviction determinism ---------------------

TEST(ServeTest, CacheHitsMissesAndEvictsDeterministically) {
  PathFixture a = MakePathFixture(100);
  // A second database with different facts (different generator seed) so the
  // content keys differ.
  auto qi2 = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 0.5;
  opt.seed = 9;
  auto db2 = MakeLayeredPathDatabase(qi2, opt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = 100;
  ProbabilisticDatabase pdb2 = AttachProbabilities(std::move(db2), pm);

  const PqeEngine::Options opts = ServeOptions();
  serve::PqeService::Options sopt;
  sopt.engine = opts;
  sopt.cache_capacity = 1;  // force evictions on alternation
  serve::PqeService service(sopt);

  EvalRequest ra = EvalRequest::ForQuery(a.qi.query, a.pdb);
  ra.seed = 0xabc;
  EvalRequest rb = EvalRequest::ForQuery(qi2.query, pdb2);
  rb.seed = 0xabc;

  PqeEngine engine(opts);
  const EvalResponse cold_a = engine.EvaluateRequest(ra);
  const EvalResponse cold_b = engine.EvaluateRequest(rb);
  ASSERT_TRUE(cold_a.status.ok() && cold_b.status.ok());

  // a: miss; b: miss + evict a; a: miss + evict b; a: hit.
  ExpectSameAnswer(service.Evaluate(ra).answer, cold_a.answer);
  ExpectSameAnswer(service.Evaluate(rb).answer, cold_b.answer);
  ExpectSameAnswer(service.Evaluate(ra).answer, cold_a.answer);
  ExpectSameAnswer(service.Evaluate(ra).answer, cold_a.answer);

  const serve::PreparedCache::Stats stats = service.cache().stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(service.cache().size(), 1u);
}

TEST(ServeTest, ContentKeySeesFactsNotObjectIdentity) {
  PathFixture a = MakePathFixture(100);
  PathFixture b = MakePathFixture(200);  // same facts, different labels
  const uint64_t ka = serve::PreparedCache::ContentKey(
      a.qi.query, a.pdb.database(), /*max_width=*/3);
  const uint64_t kb = serve::PreparedCache::ContentKey(
      b.qi.query, b.pdb.database(), /*max_width=*/3);
  // Probability labels are not part of the key: the skeleton is
  // probability-independent, so both labellings share one PreparedQuery.
  EXPECT_EQ(ka, kb);
  EXPECT_NE(ka, serve::PreparedCache::ContentKey(a.qi.query,
                                                 a.pdb.database(),
                                                 /*max_width=*/4));
}

// --- PreparedQuery: rebind bit-identity and the answer memo ---------------

TEST(ServeTest, RebindMatchesColdBuildBitForBit) {
  PathFixture a = MakePathFixture(100);
  PathFixture b = MakePathFixture(200);  // same facts, new labelling
  const PqeEngine::Options opts = ServeOptions();

  auto prepared = serve::PreparedQuery::Prepare(a.qi.query, a.pdb.database(),
                                                UrConstructionOptions{});
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_TRUE((*prepared)->is_path_route());

  EstimatorConfig cfg = PqeEngine::MakeEstimatorConfig(opts, nullptr);
  PqeEngine engine(opts);
  EvalRequest ra = EvalRequest::ForQuery(a.qi.query, a.pdb);
  ra.seed = cfg.seed;
  EvalRequest rb = EvalRequest::ForQuery(b.qi.query, b.pdb);
  rb.seed = cfg.seed;

  // Labelling A (cold bind), labelling B (rebind — delta when B keeps A's
  // denominators, full otherwise), labelling A again (a hit: the bind LRU
  // holds both labellings).
  auto pa = (*prepared)->EvaluateFpras(a.pdb, cfg);
  auto pb = (*prepared)->EvaluateFpras(b.pdb, cfg);
  auto pa2 = (*prepared)->EvaluateFpras(a.pdb, cfg);
  ASSERT_TRUE(pa.ok() && pb.ok() && pa2.ok());
  ExpectSameAnswer(*pa, engine.EvaluateRequest(ra).answer);
  ExpectSameAnswer(*pb, engine.EvaluateRequest(rb).answer);
  ExpectSameAnswer(*pa2, *pa);
  EXPECT_EQ((*prepared)->rebinds() + (*prepared)->delta_rebinds(), 2u);
  EXPECT_EQ((*prepared)->bind_hits(), 1u);
  EXPECT_EQ((*prepared)->bind_evictions(), 0u);
}

TEST(ServeTest, AnswerMemoReplaysIdenticalRequestsOnly) {
  PathFixture fx = MakePathFixture(100);
  const PqeEngine::Options opts = ServeOptions();
  auto prepared = serve::PreparedQuery::Prepare(fx.qi.query, fx.pdb.database(),
                                                UrConstructionOptions{});
  ASSERT_TRUE(prepared.ok());

  EstimatorConfig cfg = PqeEngine::MakeEstimatorConfig(opts, nullptr);
  auto first = (*prepared)->EvaluateFpras(fx.pdb, cfg);
  auto replay = (*prepared)->EvaluateFpras(fx.pdb, cfg);
  ASSERT_TRUE(first.ok() && replay.ok());
  ExpectSameAnswer(*replay, *first);
  EXPECT_EQ((*prepared)->answer_hits(), 1u);
  EXPECT_EQ((*prepared)->bind_hits(), 1u);

  // A different seed is a different request: fresh samples, no memo hit.
  cfg.seed ^= 1;
  auto fresh = (*prepared)->EvaluateFpras(fx.pdb, cfg);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*prepared)->answer_hits(), 1u);
}

// --- Deadlines: typed status, never a hang --------------------------------

TEST(ServeTest, ExpiredDeadlineReturnsTypedStatus) {
  PathFixture fx = MakePathFixture(100);
  serve::PqeService::Options sopt;
  sopt.engine = ServeOptions();
  serve::PqeService service(sopt);

  CancelToken cancelled;
  cancelled.Cancel();
  EvalRequest r = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
  r.request_id = 1;
  r.deadline_ms = 60'000;  // generous deadline; the parent token is what
  r.cancel = &cancelled;   // expires — deterministic in tests
  const std::vector<EvalResponse> resp = service.EvaluateBatch({r});
  ASSERT_EQ(resp.size(), 1u);
  EXPECT_FALSE(resp[0].status.ok());
  EXPECT_EQ(resp[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(resp[0].deadline_exceeded);
  EXPECT_EQ(resp[0].request_id, 1u);
}

TEST(ServeTest, DeadlineInsideBatchDoesNotPoisonNeighbors) {
  PathFixture fx = MakePathFixture(100);
  serve::PqeService::Options sopt;
  sopt.engine = ServeOptions();
  serve::PqeService service(sopt);

  CancelToken cancelled;
  cancelled.Cancel();
  EvalRequest ok_req = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
  ok_req.request_id = 1;
  ok_req.seed = 0xabc;
  EvalRequest dead_req = ok_req;
  dead_req.request_id = 2;
  dead_req.cancel = &cancelled;
  const std::vector<EvalResponse> resp =
      service.EvaluateBatch({ok_req, dead_req, ok_req});
  ASSERT_EQ(resp.size(), 3u);
  EXPECT_TRUE(resp[0].status.ok()) << resp[0].status.ToString();
  EXPECT_TRUE(resp[1].deadline_exceeded);
  EXPECT_TRUE(resp[2].status.ok());
  ExpectSameAnswer(resp[2].answer, resp[0].answer);
}

TEST(ServeTest, DeadlineIncrementsStatsCounterAndCarriesProgress) {
  // The deadline-exceeded path in the telemetry plane: the typed status
  // lands in ServiceStats.deadline_exceeded (not errors), and the response
  // carries the partial-progress count from the cancel token — zero strata
  // for a request that expired before evaluation started.
  PathFixture fx = MakePathFixture(100);
  serve::PqeService::Options sopt;
  sopt.engine = ServeOptions();
  serve::PqeService service(sopt);

  CancelToken cancelled;
  cancelled.Cancel();
  EvalRequest dead = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
  dead.request_id = 1;
  dead.deadline_ms = 60'000;
  dead.cancel = &cancelled;
  EvalRequest alive = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
  alive.request_id = 2;
  alive.seed = 0xabc;
  alive.deadline_ms = 60'000;  // a live token, so progress gets reported
  const std::vector<EvalResponse> resp = service.EvaluateBatch({dead, alive});
  ASSERT_EQ(resp.size(), 2u);
  EXPECT_TRUE(resp[0].deadline_exceeded);
  EXPECT_EQ(resp[0].progress, 0u);  // expired before any stratum finished
  EXPECT_TRUE(resp[1].status.ok());
  EXPECT_GT(resp[1].progress, 0u);  // the live twin reports finished strata

  const serve::ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ServeTest, StatsSnapshotClassifiesCacheEffectiveness) {
  PathFixture a = MakePathFixture(100);
  PathFixture b = MakePathFixture(200);  // same facts, different labelling
  serve::PqeService::Options sopt;
  sopt.engine = ServeOptions();
  sopt.num_threads = 1;
  serve::PqeService service(sopt);

  EvalRequest ra = EvalRequest::ForQuery(a.qi.query, a.pdb);
  ra.request_id = 1;
  ra.seed = 0xabc;
  EvalRequest rb = EvalRequest::ForQuery(b.qi.query, b.pdb);
  rb.request_id = 2;
  rb.seed = 0xabc;
  EvalRequest rc = ra;  // identical to ra after the labelling moved away
  rc.request_id = 3;
  EvalRequest rd = ra;  // identical again: answer memo replay
  rd.request_id = 4;

  // cold compile, rebind (new labelling), answer memo twice: labelling A's
  // bound slot — and its memo — survives in the bind LRU while B is served,
  // so both identical replays hit the memo.
  for (const EvalRequest* r : {&ra, &rb, &rc, &rd}) {
    ASSERT_TRUE(service.Evaluate(*r).status.ok());
  }

  const serve::ServiceStats stats = service.StatsSnapshot();
  using serve::CacheClass;
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.by_class[static_cast<size_t>(CacheClass::kColdCompile)],
            1u);
  EXPECT_EQ(stats.by_class[static_cast<size_t>(CacheClass::kRebind)] +
                stats.by_class[static_cast<size_t>(CacheClass::kDeltaRebind)],
            1u);
  EXPECT_EQ(stats.by_class[static_cast<size_t>(CacheClass::kAnswerMemo)],
            2u);
  EXPECT_EQ(stats.by_class[static_cast<size_t>(CacheClass::kDelegated)], 0u);

  // Per-stage latencies: every request ran the estimate stage except the
  // memo replay; quantiles come back ordered.
  const serve::ServiceStats::StageStats* total = stats.FindStage("total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count, 4u);
  EXPECT_GT(total->sum_ns, 0u);
  EXPECT_LE(total->p50_ns, total->p95_ns);
  EXPECT_LE(total->p95_ns, total->p99_ns);
  const serve::ServiceStats::StageStats* compile = stats.FindStage("compile");
  ASSERT_NE(compile, nullptr);
  EXPECT_EQ(compile->count, 1u);  // only the cold request compiled

  // The slow-query log holds the slowest requests with their excerpts.
  ASSERT_FALSE(stats.slow_queries.empty());
  EXPECT_LE(stats.slow_queries.size(), sopt.slow_log_capacity);
  for (size_t i = 1; i < stats.slow_queries.size(); ++i) {
    EXPECT_GE(stats.slow_queries[i - 1].total_ns,
              stats.slow_queries[i].total_ns);
  }
  EXPECT_NE(stats.slow_queries[0].span_excerpt.find("class="),
            std::string::npos);
}

TEST(ServeTest, BatchTracesCarryRequestId) {
  // Satellite contract: every per-request trace names its request, so batch
  // traces stay attributable. Covers both the prepared route
  // ("serve.request" root) and the delegated route ("engine.evaluate").
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "tracing compiled out";
  PathFixture fx = MakePathFixture(100);
  serve::PqeService::Options sopt;
  sopt.engine = ServeOptions();
  sopt.num_threads = 1;
  serve::PqeService service(sopt);

  EvalRequest prepared = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
  prepared.request_id = 11;
  prepared.collect_trace = true;
  EvalRequest delegated = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
  delegated.request_id = 12;
  delegated.collect_trace = true;
  delegated.method = PqeMethod::kMonteCarlo;

  const std::vector<EvalResponse> resp =
      service.EvaluateBatch({prepared, delegated});
  ASSERT_EQ(resp.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(resp[i].status.ok()) << resp[i].status.ToString();
    ASSERT_NE(resp[i].answer.trace, nullptr);
    const obs::TraceAttr* attr =
        resp[i].answer.trace->root.FindAttr("request_id");
    ASSERT_NE(attr, nullptr) << "trace root missing request_id";
    EXPECT_EQ(attr->u, 11u + i);
  }
  EXPECT_EQ(resp[0].answer.trace->root.name, "serve.request");
  EXPECT_EQ(resp[1].answer.trace->root.name, "engine.evaluate");
}

// --- Batch API ------------------------------------------------------------

TEST(ServeTest, BatchAssignsIndexIdsAndStaysReproducible) {
  PathFixture fx = MakePathFixture(100);
  serve::PqeService::Options sopt;
  sopt.engine = ServeOptions();
  serve::PqeService service(sopt);

  // request_id 0 means "use the batch index" — two identical anonymous
  // requests at different indices draw different seeds.
  EvalRequest r = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
  const std::vector<EvalResponse> resp = service.EvaluateBatch({r, r});
  ASSERT_EQ(resp.size(), 2u);
  ASSERT_TRUE(resp[0].status.ok() && resp[1].status.ok());
  EXPECT_EQ(resp[0].request_id, 0u);
  EXPECT_EQ(resp[1].request_id, 1u);

  // And the whole batch replays bit-identically.
  const std::vector<EvalResponse> again = service.EvaluateBatch({r, r});
  ExpectSameAnswer(again[0].answer, resp[0].answer);
  ExpectSameAnswer(again[1].answer, resp[1].answer);
}

}  // namespace
}  // namespace pqe
