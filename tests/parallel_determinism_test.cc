// The parallel sampling layers promise bit-identical results across thread
// counts (docs/parallelism.md): per-rep/per-shard seeds derive from
// (seed, index), shard boundaries are fixed by configuration, and merges run
// in fixed index order. These tests pin that contract by running every
// parallelized estimator at num_threads ∈ {1, 2, 8} and demanding exact
// equality — doubles compared with ==, ExtFloats with operator==, CountStats
// field by field via ToString().

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "automata/nfa.h"
#include "automata/nfta.h"
#include "core/engine.h"
#include "counting/count_nfa.h"
#include "counting/count_nfta.h"
#include "lineage/karp_luby.h"
#include "lineage/lineage.h"
#include "lineage/monte_carlo.h"
#include "serve/service.h"
#include "workload/generators.h"

namespace pqe {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};

EstimatorConfig CountConfig(size_t threads) {
  EstimatorConfig cfg;
  cfg.epsilon = 0.3;
  cfg.seed = 0xfeed;
  cfg.repetitions = 5;  // exercise the parallel median-of-R loop
  cfg.num_threads = threads;
  return cfg;
}

TEST(ParallelDeterminismTest, CountNftaTreesIdenticalAcrossThreadCounts) {
  // Ambiguous full-binary-tree automaton: overlapping unions keep the
  // Karp-Luby canonical-witness path (and its Rng draws) busy.
  Nfta t;
  StateId q = t.AddState();
  t.SetInitialState(q);
  t.AddTransition(q, 0, {q, q});
  t.AddTransition(q, 0, {});
  t.AddTransition(q, 1, {});

  auto base = CountNftaTrees(t, 9, CountConfig(1));
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  for (size_t threads : kThreadCounts) {
    auto run = CountNftaTrees(t, 9, CountConfig(threads));
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->value == base->value)
        << "threads=" << threads << ": " << run->value.ToString()
        << " != " << base->value.ToString();
    EXPECT_EQ(run->stats.ToString(), base->stats.ToString())
        << "threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, CountNfaStringsIdenticalAcrossThreadCounts) {
  // Ambiguous NFA over {0,1}: two initial branches that reconverge, plus
  // self-loops, so distinct runs accept the same strings.
  Nfa nfa;
  StateId s = nfa.AddState();
  StateId a = nfa.AddState();
  StateId b = nfa.AddState();
  nfa.MarkInitial(s);
  nfa.MarkAccepting(a);
  nfa.MarkAccepting(b);
  nfa.AddTransition(s, 0, a);
  nfa.AddTransition(s, 0, b);
  nfa.AddTransition(a, 0, a);
  nfa.AddTransition(a, 1, a);
  nfa.AddTransition(b, 1, b);
  nfa.AddTransition(b, 1, a);

  auto base = CountNfaStrings(nfa, 8, CountConfig(1));
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  for (size_t threads : kThreadCounts) {
    auto run = CountNfaStrings(nfa, 8, CountConfig(threads));
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->value == base->value)
        << "threads=" << threads << ": " << run->value.ToString()
        << " != " << base->value.ToString();
    EXPECT_EQ(run->stats.ToString(), base->stats.ToString())
        << "threads=" << threads;
  }
}

// A small-but-nontrivial lineage instance shared by the KL / MC tests.
struct LineageFixture {
  QueryInstance qi;
  ProbabilisticDatabase pdb;
  DnfLineage lineage;
};

LineageFixture MakeFixture() {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 1.0;
  opt.seed = 7;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.seed = 11;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  DnfLineage lineage = BuildLineage(qi.query, pdb.database()).MoveValue();
  return {std::move(qi), std::move(pdb), std::move(lineage)};
}

TEST(ParallelDeterminismTest, KarpLubyIdenticalAcrossThreadCounts) {
  LineageFixture fx = MakeFixture();
  KarpLubyConfig cfg;
  cfg.seed = 0xfeed;
  cfg.num_samples = 50'000;
  cfg.num_threads = 1;
  auto base = KarpLubyEstimate(fx.lineage, fx.pdb, cfg);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  for (size_t threads : kThreadCounts) {
    cfg.num_threads = threads;
    auto run = KarpLubyEstimate(fx.lineage, fx.pdb, cfg);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->probability, base->probability) << "threads=" << threads;
    EXPECT_EQ(run->hits, base->hits) << "threads=" << threads;
    EXPECT_EQ(run->samples, base->samples);
    EXPECT_EQ(run->clauses, base->clauses);
  }
}

TEST(ParallelDeterminismTest, MonteCarloIdenticalAcrossThreadCounts) {
  LineageFixture fx = MakeFixture();
  MonteCarloConfig cfg;
  cfg.seed = 0xfeed;
  cfg.num_samples = 20'000;
  cfg.num_threads = 1;
  auto base = MonteCarloPqe(fx.qi.query, fx.pdb, cfg);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  for (size_t threads : kThreadCounts) {
    cfg.num_threads = threads;
    auto run = MonteCarloPqe(fx.qi.query, fx.pdb, cfg);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->probability, base->probability) << "threads=" << threads;
    EXPECT_EQ(run->hits, base->hits) << "threads=" << threads;
    EXPECT_EQ(run->samples, base->samples);
  }
}

TEST(ParallelDeterminismTest, ServiceBatchIdenticalAcrossThreadCounts) {
  // The serving layer extends the contract to EvaluateBatch: the batch
  // fan-out width must never change any answer. Mixed seeds and labellings
  // keep every request distinct (no answer-memo shortcuts), and each
  // response is compared field by field against the single-threaded run.
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 1.0;
  opt.seed = 7;
  std::vector<ProbabilisticDatabase> pdbs;
  for (uint64_t j = 0; j < 2; ++j) {
    auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
    ProbabilityModel pm;
    pm.max_denominator = 8;
    pm.seed = 11 + j;
    pdbs.push_back(AttachProbabilities(std::move(db), pm));
  }
  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kFpras)
                  .Epsilon(0.3)
                  .Seed(0xfeed)
                  .PoolSize(48)
                  .Repetitions(1)
                  .Build();
  ASSERT_TRUE(opts.ok());

  std::vector<EvalRequest> batch;
  for (size_t i = 0; i < 6; ++i) {
    EvalRequest r = EvalRequest::ForQuery(qi.query, pdbs[i % 2]);
    r.request_id = i + 1;
    batch.push_back(r);
  }

  serve::PqeService::Options base_sopt;
  base_sopt.engine = *opts;
  base_sopt.num_threads = 1;
  const std::vector<EvalResponse> base =
      serve::PqeService(base_sopt).EvaluateBatch(batch);
  for (size_t threads : kThreadCounts) {
    serve::PqeService::Options sopt = base_sopt;
    sopt.num_threads = threads;
    const std::vector<EvalResponse> run =
        serve::PqeService(sopt).EvaluateBatch(batch);
    ASSERT_EQ(run.size(), base.size());
    for (size_t i = 0; i < run.size(); ++i) {
      ASSERT_TRUE(base[i].status.ok()) << base[i].status.ToString();
      ASSERT_TRUE(run[i].status.ok())
          << "threads=" << threads << ": " << run[i].status.ToString();
      EXPECT_EQ(run[i].answer.probability, base[i].answer.probability)
          << "threads=" << threads << " request=" << i;
      ASSERT_TRUE(run[i].answer.count_stats.has_value());
      EXPECT_EQ(run[i].answer.count_stats->ToString(),
                base[i].answer.count_stats->ToString())
          << "threads=" << threads << " request=" << i;
    }
  }
}

TEST(ParallelDeterminismTest, ShardCountIsPartOfTheStreamNotTheSchedule) {
  // num_shards picks the sample streams (like the seed does); num_threads
  // never. Same shards, different threads -> identical; different shards ->
  // an (almost surely) different but still valid estimate.
  LineageFixture fx = MakeFixture();
  KarpLubyConfig cfg;
  cfg.seed = 0xfeed;
  cfg.num_samples = 50'000;
  cfg.num_shards = 16;
  cfg.num_threads = 2;
  auto a = KarpLubyEstimate(fx.lineage, fx.pdb, cfg);
  cfg.num_threads = 8;
  auto b = KarpLubyEstimate(fx.lineage, fx.pdb, cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->probability, b->probability);
  EXPECT_EQ(a->hits, b->hits);
}

}  // namespace
}  // namespace pqe
