// Tests for the lineage module: DNF construction, the Θ(|D|^|Q|) blowup the
// paper highlights, Karp–Luby estimation, and exact Shannon-expansion WMC.

#include <cmath>

#include <gtest/gtest.h>

#include "cq/builders.h"
#include "eval/eval.h"
#include "lineage/karp_luby.h"
#include "lineage/lineage.h"
#include "workload/generators.h"

namespace pqe {
namespace {

TEST(LineageTest, PathLineageOneClausePerWitness) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  // Complete bipartite joins through b: 2 x 2 = 4 witnesses.
  ASSERT_TRUE(db.AddFactByName("R1", {"a1", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R1", {"a2", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "c1"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "c2"}).ok());
  auto lineage = BuildLineage(qi.query, db).MoveValue();
  EXPECT_EQ(lineage.NumClauses(), 4u);
  EXPECT_EQ(lineage.NumLiterals(), 8u);
  EXPECT_EQ(CountWitnesses(qi.query, db).value(), 4u);
}

TEST(LineageTest, BlowupIsExponentialInQueryLength) {
  // Complete layered graph of width w: the lineage of the length-n path
  // query has exactly w^(n+1) clauses.
  const uint32_t w = 2;
  for (uint32_t n : {2u, 3u, 4u}) {
    auto qi = MakePathQuery(n).MoveValue();
    LayeredGraphOptions opt;
    opt.width = w;
    opt.density = 1.0;
    opt.seed = 1;
    auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
    auto lineage = BuildLineage(qi.query, db).MoveValue();
    EXPECT_EQ(lineage.NumClauses(), std::pow(w, n + 1))
        << "n=" << n;
  }
}

TEST(LineageTest, ClauseBudgetIsEnforced) {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 1.0;
  opt.seed = 1;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  EXPECT_EQ(BuildLineage(qi.query, db, /*max_clauses=*/10).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(LineageTest, ToStringRendersClauses) {
  auto qi = MakePathQuery(1).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  auto lineage = BuildLineage(qi.query, db).MoveValue();
  EXPECT_EQ(lineage.ToString(db), "(R1(a,b))");
}

// ----------------------------------------------------- exact Shannon WMC --

TEST(ExactDnfTest, MatchesEnumerationOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto qi = MakePathQuery(2).MoveValue();
    RandomDatabaseOptions ropt;
    ropt.domain_size = 3;
    ropt.facts_per_relation = 4;
    ropt.seed = seed;
    auto db = MakeRandomDatabase(qi.schema, ropt).MoveValue();
    ProbabilityModel pm;
    pm.seed = seed + 100;
    ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
    auto lineage = BuildLineage(qi.query, pdb.database()).MoveValue();
    auto exact = ExactDnfProbability(lineage, pdb).MoveValue();
    auto truth = ExactProbabilityByEnumeration(pdb, qi.query).MoveValue();
    EXPECT_EQ(exact.Compare(truth), 0) << "seed=" << seed;
  }
}

TEST(ExactDnfTest, EmptyLineageIsZero) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  DnfLineage lineage;
  lineage.num_facts = pdb.NumFacts();
  auto p = ExactDnfProbability(lineage, pdb).MoveValue();
  EXPECT_TRUE(p.IsZero());
}

// ------------------------------------------------------------- Karp–Luby --

TEST(KarpLubyTest, WithinBandOfExact) {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 2;
  opt.density = 0.9;
  opt.seed = 9;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.seed = 5;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  auto lineage = BuildLineage(qi.query, pdb.database()).MoveValue();
  auto truth = ExactDnfProbability(lineage, pdb).MoveValue().ToDouble();
  KarpLubyConfig cfg;
  cfg.epsilon = 0.05;
  cfg.seed = 3;
  auto kl = KarpLubyEstimate(lineage, pdb, cfg).MoveValue();
  ASSERT_GT(truth, 0.0);
  EXPECT_NEAR(kl.probability / truth, 1.0, 0.15);
}

TEST(KarpLubyTest, EmptyLineageGivesZero) {
  auto qi = MakePathQuery(1).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  DnfLineage lineage;
  lineage.num_facts = 1;
  KarpLubyConfig cfg;
  auto kl = KarpLubyEstimate(lineage, pdb, cfg).MoveValue();
  EXPECT_EQ(kl.probability, 0.0);
}

TEST(KarpLubyTest, ValidatesInputs) {
  auto qi = MakePathQuery(1).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  DnfLineage bad;
  bad.num_facts = 99;  // disagrees with pdb
  KarpLubyConfig cfg;
  EXPECT_FALSE(KarpLubyEstimate(bad, pdb, cfg).ok());
  DnfLineage lineage;
  lineage.num_facts = 1;
  cfg.epsilon = 2.0;
  EXPECT_FALSE(KarpLubyEstimate(lineage, pdb, cfg).ok());
}

TEST(KarpLubyTest, EndToEndConvenienceWrapper) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "c"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  KarpLubyConfig cfg;
  cfg.epsilon = 0.05;
  cfg.seed = 8;
  auto kl = KarpLubyPqe(qi.query, pdb, cfg).MoveValue();
  EXPECT_NEAR(kl.probability, 0.25, 0.05);
  EXPECT_EQ(kl.clauses, 1u);
}

}  // namespace
}  // namespace pqe
