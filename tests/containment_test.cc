// Tests for CQ containment and minimization (Chandra–Merlin homomorphism
// test over canonical databases).

#include <gtest/gtest.h>

#include "cq/builders.h"
#include "cq/containment.h"
#include "cq/parser.h"

namespace pqe {
namespace {

Schema GraphSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddRelation("E", 2).ok());
  EXPECT_TRUE(schema.AddRelation("L", 1).ok());
  return schema;
}

TEST(CanonicalDatabaseTest, OneFactPerAtomWithFrozenVariables) {
  Schema schema = GraphSchema();
  auto q = ParseQuery(schema, "E(x,y), E(y,x), L(x)").MoveValue();
  auto db = CanonicalDatabase(schema, q).MoveValue();
  EXPECT_EQ(db.NumFacts(), 3u);
  // Frozen constants are shared across atoms mentioning the same variable.
  EXPECT_EQ(db.NumValues(), 2u);
}

TEST(ContainmentTest, LongerPathsAreContainedInShorterOnes) {
  // Over a single edge relation, a length-3 path query implies a length-2
  // path query (every 3-path contains a 2-path): P3 ⊑ P2.
  Schema schema = GraphSchema();
  auto p2 = ParseQuery(schema, "E(x,y), E(y,z)").MoveValue();
  auto p3 = ParseQuery(schema, "E(x,y), E(y,z), E(z,w)").MoveValue();
  EXPECT_TRUE(IsContainedIn(schema, p3, p2).value());
  EXPECT_FALSE(IsContainedIn(schema, p2, p3).value());
  EXPECT_FALSE(AreEquivalent(schema, p2, p3).value());
}

TEST(ContainmentTest, SelfLoopIsContainedInEverything) {
  Schema schema = GraphSchema();
  auto loop = ParseQuery(schema, "E(x,x)").MoveValue();
  auto p2 = ParseQuery(schema, "E(x,y), E(y,z)").MoveValue();
  EXPECT_TRUE(IsContainedIn(schema, loop, p2).value());
  EXPECT_FALSE(IsContainedIn(schema, p2, loop).value());
}

TEST(ContainmentTest, RenamedVariablesAreEquivalent) {
  Schema schema = GraphSchema();
  auto a = ParseQuery(schema, "E(x,y), L(x)").MoveValue();
  auto b = ParseQuery(schema, "E(u,v), L(u)").MoveValue();
  EXPECT_TRUE(AreEquivalent(schema, a, b).value());
}

TEST(ContainmentTest, DisjointRelationsAreIncomparable) {
  Schema schema = GraphSchema();
  auto e = ParseQuery(schema, "E(x,y)").MoveValue();
  auto l = ParseQuery(schema, "L(x)").MoveValue();
  EXPECT_FALSE(IsContainedIn(schema, e, l).value());
  EXPECT_FALSE(IsContainedIn(schema, l, e).value());
}

TEST(MinimizeTest, RedundantAtomIsDropped) {
  // E(x,y), E(u,v): the second atom folds onto the first — core is E(x,y).
  Schema schema = GraphSchema();
  auto q = ParseQuery(schema, "E(x,y), E(u,v)").MoveValue();
  auto core = MinimizeQuery(schema, q).MoveValue();
  EXPECT_EQ(core.NumAtoms(), 1u);
  EXPECT_TRUE(AreEquivalent(schema, q, core).value());
}

TEST(MinimizeTest, ChainFoldsOntoSelfLoop) {
  // E(x,x), E(x,y): y can map to x — core is the self-loop alone.
  Schema schema = GraphSchema();
  auto q = ParseQuery(schema, "E(x,x), E(x,y)").MoveValue();
  auto core = MinimizeQuery(schema, q).MoveValue();
  EXPECT_EQ(core.NumAtoms(), 1u);
}

TEST(MinimizeTest, CoresAreFixedPoints) {
  Schema schema = GraphSchema();
  // A genuine 2-path (no self-loops): already a core.
  auto p2 = ParseQuery(schema, "E(x,y), E(y,z)").MoveValue();
  auto core = MinimizeQuery(schema, p2).MoveValue();
  EXPECT_EQ(core.NumAtoms(), 2u);
  // Self-join-free queries are always cores.
  auto path = MakePathQuery(4).MoveValue();
  auto core2 = MinimizeQuery(path.schema, path.query).MoveValue();
  EXPECT_EQ(core2.NumAtoms(), 4u);
}

TEST(MinimizeTest, PreservesSemanticsOnTriangleWithChord) {
  Schema schema = GraphSchema();
  // Triangle plus an extra edge atom that folds into it.
  auto q =
      ParseQuery(schema, "E(x,y), E(y,z), E(z,x), E(a,b)").MoveValue();
  auto core = MinimizeQuery(schema, q).MoveValue();
  EXPECT_EQ(core.NumAtoms(), 3u);
  EXPECT_TRUE(AreEquivalent(schema, q, core).value());
}

}  // namespace
}  // namespace pqe
