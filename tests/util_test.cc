// Unit tests for the util module: Status/Result, BigUint/BigRational,
// ExtFloat, and the seeded RNG.

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "util/bigint.h"
#include "util/extfloat.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

namespace pqe {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotSupported), "NotSupported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  PQE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Doubled(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------- BigUint --

TEST(BigUintTest, ConstructionAndDecimal) {
  EXPECT_EQ(BigUint().ToDecimalString(), "0");
  EXPECT_EQ(BigUint(1).ToDecimalString(), "1");
  EXPECT_EQ(BigUint(0xffffffffULL).ToDecimalString(), "4294967295");
  EXPECT_EQ(BigUint(1ULL << 32).ToDecimalString(), "4294967296");
  EXPECT_EQ(BigUint(UINT64_MAX).ToDecimalString(), "18446744073709551615");
}

TEST(BigUintTest, DecimalRoundTrip) {
  const char* cases[] = {"0", "1", "999999999", "1000000000",
                         "123456789012345678901234567890"};
  for (const char* c : cases) {
    auto v = BigUint::FromDecimalString(c);
    ASSERT_TRUE(v.ok()) << c;
    EXPECT_EQ(v->ToDecimalString(), c);
  }
  EXPECT_FALSE(BigUint::FromDecimalString("").ok());
  EXPECT_FALSE(BigUint::FromDecimalString("12x").ok());
}

TEST(BigUintTest, ArithmeticAgreesWithInt128OnRandomInputs) {
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    uint64_t a = rng.Next() >> (rng.NextBounded(40));
    uint64_t b = rng.Next() >> (rng.NextBounded(40));
    BigUint A(a), B(b);
    // Add via 128-bit reference.
    unsigned __int128 sum = (unsigned __int128)a + b;
    BigUint expected_sum =
        BigUint((uint64_t)(sum >> 64)).ShiftLeft(64).Add(
            BigUint((uint64_t)sum));
    EXPECT_EQ(A.Add(B).Compare(expected_sum), 0);
    // Mul via 128-bit reference.
    unsigned __int128 prod = (unsigned __int128)a * b;
    BigUint expected_prod =
        BigUint((uint64_t)(prod >> 64)).ShiftLeft(64).Add(
            BigUint((uint64_t)prod));
    EXPECT_EQ(A.Mul(B).Compare(expected_prod), 0);
    // Sub (ordered).
    if (a >= b) {
      EXPECT_EQ(A.Sub(B).ToDecimalString(), BigUint(a - b).ToDecimalString());
    }
    // DivMod.
    if (b != 0) {
      auto dm = A.DivMod(B);
      EXPECT_EQ(dm.quotient.ToDecimalString(),
                BigUint(a / b).ToDecimalString());
      EXPECT_EQ(dm.remainder.ToDecimalString(),
                BigUint(a % b).ToDecimalString());
    }
  }
}

TEST(BigUintTest, DivModIdentityOnWideValues) {
  Rng rng(123);
  for (int i = 0; i < 50; ++i) {
    BigUint a(rng.Next());
    for (int j = 0; j < 4; ++j) a = a.Mul(BigUint(rng.Next() | 1));
    BigUint b(rng.Next() | 1);
    auto dm = a.DivMod(b);
    // a == q*b + r and r < b.
    EXPECT_EQ(dm.quotient.Mul(b).Add(dm.remainder).Compare(a), 0);
    EXPECT_LT(dm.remainder.Compare(b), 0);
  }
}

TEST(BigUintTest, PowerOfTwoAndShifts) {
  EXPECT_EQ(BigUint::PowerOfTwo(0).ToDecimalString(), "1");
  EXPECT_EQ(BigUint::PowerOfTwo(10).ToDecimalString(), "1024");
  EXPECT_EQ(BigUint::PowerOfTwo(64).Compare(BigUint(1).ShiftLeft(64)), 0);
  EXPECT_EQ(BigUint::PowerOfTwo(100).ShiftRight(90).ToDecimalString(),
            "1024");
  EXPECT_EQ(BigUint::PowerOfTwo(100).BitLength(), 101u);
  EXPECT_TRUE(BigUint::PowerOfTwo(100).Bit(100));
  EXPECT_FALSE(BigUint::PowerOfTwo(100).Bit(99));
}

TEST(BigUintTest, Gcd) {
  EXPECT_EQ(BigUint::Gcd(BigUint(12), BigUint(18)).ToDecimalString(), "6");
  EXPECT_EQ(BigUint::Gcd(BigUint(), BigUint(7)).ToDecimalString(), "7");
  EXPECT_EQ(BigUint::Gcd(BigUint(13), BigUint(7)).ToDecimalString(), "1");
}

TEST(BigUintTest, RatioToDouble) {
  EXPECT_DOUBLE_EQ(BigRatioToDouble(BigUint(1), BigUint(2)), 0.5);
  EXPECT_DOUBLE_EQ(BigRatioToDouble(BigUint(), BigUint(5)), 0.0);
  // Huge but equal-magnitude operands.
  BigUint huge = BigUint::PowerOfTwo(5000);
  EXPECT_NEAR(BigRatioToDouble(huge.MulU64(3), huge.MulU64(4)), 0.75, 1e-12);
}

// ----------------------------------------------------------- BigRational --

TEST(BigRationalTest, ArithmeticAndComparison) {
  BigRational half(1, 2), third(1, 3);
  EXPECT_EQ(half.Add(third).Normalized().ToString(), "5/6");
  EXPECT_EQ(half.Sub(third).Normalized().ToString(), "1/6");
  EXPECT_EQ(half.Mul(third).Normalized().ToString(), "1/6");
  EXPECT_EQ(half.Div(third).Normalized().ToString(), "3/2");
  EXPECT_TRUE(third < half);
  EXPECT_TRUE(BigRational(2, 4) == half);
  EXPECT_DOUBLE_EQ(half.ToDouble(), 0.5);
  EXPECT_TRUE(BigRational::Zero().IsZero());
  EXPECT_EQ(BigRational::One().Compare(BigRational(3, 3)), 0);
}

// -------------------------------------------------------------- ExtFloat --

TEST(ExtFloatTest, RoundTripAndOps) {
  EXPECT_TRUE(ExtFloat().IsZero());
  EXPECT_DOUBLE_EQ(ExtFloat::FromDouble(1.5).ToDouble(), 1.5);
  EXPECT_DOUBLE_EQ(ExtFloat::FromUint64(1000).ToDouble(), 1000.0);
  ExtFloat a = ExtFloat::FromDouble(3.0);
  ExtFloat b = ExtFloat::FromDouble(4.0);
  EXPECT_DOUBLE_EQ(a.Mul(b).ToDouble(), 12.0);
  EXPECT_DOUBLE_EQ(a.Add(b).ToDouble(), 7.0);
  EXPECT_DOUBLE_EQ(b.Div(a).ToDouble(), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(a.Scale(0.5).ToDouble(), 1.5);
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_EQ(a.Compare(ExtFloat::FromDouble(3.0)), 0);
}

TEST(ExtFloatTest, SurvivesHugeExponents) {
  // 2^100000 overflows double; ExtFloat must stay exact in log space.
  ExtFloat big = ExtFloat::FromDouble(2.0);
  for (int i = 0; i < 17; ++i) big = big.Mul(big);  // 2^(2^17)
  EXPECT_NEAR(big.Log2(), 131072.0, 1e-6);
  EXPECT_DOUBLE_EQ(big.Div(big).ToDouble(), 1.0);
  // Adding a vastly smaller number is a no-op.
  EXPECT_EQ(big.Add(ExtFloat::FromDouble(1.0)).Compare(big), 0);
}

TEST(ExtFloatTest, FromBigUintMatchesKnownValues) {
  EXPECT_DOUBLE_EQ(ExtFloat::FromBigUint(BigUint(12345)).ToDouble(), 12345.0);
  EXPECT_NEAR(ExtFloat::FromBigUint(BigUint::PowerOfTwo(200)).Log2(), 200.0,
              1e-9);
  EXPECT_TRUE(ExtFloat::FromBigUint(BigUint()).IsZero());
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(3);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.NextDiscrete(weights)];
  EXPECT_EQ(counts[0], 0);
  // Index 2 should be drawn ~3x as often as index 1.
  const double ratio = static_cast<double>(counts[2]) / counts[1];
  EXPECT_NEAR(ratio, 3.0, 0.4);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(4);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

}  // namespace
}  // namespace pqe
