// Tests for the counting module: the exact oracles and the CountNFA /
// CountNFTA estimators (accuracy against exact counts on randomized
// automata).

#include <cmath>

#include <gtest/gtest.h>

#include "counting/count_nfa.h"
#include "counting/count_nfta.h"
#include "counting/exact.h"
#include "util/rng.h"

namespace pqe {
namespace {

EstimatorConfig TestConfig(double epsilon = 0.15, uint64_t seed = 17) {
  EstimatorConfig cfg;
  cfg.epsilon = epsilon;
  cfg.seed = seed;
  return cfg;
}

// ------------------------------------------------------------ exact NFAs

TEST(ExactNfaCountTest, BinaryStringsUniversalAutomaton) {
  // One accepting state with self-loops on {0,1}: |L_n| = 2^n.
  Nfa nfa;
  StateId s = nfa.AddState();
  nfa.MarkInitial(s);
  nfa.MarkAccepting(s);
  nfa.AddTransition(s, 0, s);
  nfa.AddTransition(s, 1, s);
  EXPECT_EQ(ExactCountNfaStrings(nfa, 10)->ToDecimalString(), "1024");
  EXPECT_EQ(ExactCountNfaStrings(nfa, 0)->ToDecimalString(), "1");
}

TEST(ExactNfaCountTest, AmbiguityDoesNotOvercount) {
  // Two redundant paths accepting the same single string "0".
  Nfa nfa;
  StateId s = nfa.AddState();
  StateId a = nfa.AddState();
  StateId b = nfa.AddState();
  nfa.MarkInitial(s);
  nfa.MarkAccepting(a);
  nfa.MarkAccepting(b);
  nfa.AddTransition(s, 0, a);
  nfa.AddTransition(s, 0, b);
  EXPECT_EQ(ExactCountNfaStrings(nfa, 1)->ToDecimalString(), "1");
}

TEST(ExactNfaCountTest, EmptyLanguage) {
  Nfa nfa;
  StateId s = nfa.AddState();
  nfa.MarkInitial(s);
  // no accepting states
  EXPECT_EQ(ExactCountNfaStrings(nfa, 3)->ToDecimalString(), "0");
}

// ----------------------------------------------------------- exact NFTAs

TEST(ExactNftaCountTest, FullBinaryTreesOverOneSymbol) {
  // q --f--> (q q) | q --f--> (): counts full binary trees with any leaf
  // arrangement = Catalan-like: sizes 1, 3, 5, 7 give 1, 1, 2, 5 trees.
  Nfta t;
  StateId q = t.AddState();
  t.SetInitialState(q);
  t.AddTransition(q, 0, {q, q});
  t.AddTransition(q, 0, {});
  EXPECT_EQ(ExactCountNftaTrees(t, 1)->ToDecimalString(), "1");
  EXPECT_EQ(ExactCountNftaTrees(t, 2)->ToDecimalString(), "0");
  EXPECT_EQ(ExactCountNftaTrees(t, 3)->ToDecimalString(), "1");
  EXPECT_EQ(ExactCountNftaTrees(t, 5)->ToDecimalString(), "2");
  EXPECT_EQ(ExactCountNftaTrees(t, 7)->ToDecimalString(), "5");
}

TEST(ExactNftaCountTest, AmbiguousRunsCountTreesOnce) {
  // Two distinct transitions generating the same leaf tree.
  Nfta t;
  StateId q = t.AddState();
  StateId a = t.AddState();
  StateId b = t.AddState();
  t.SetInitialState(q);
  t.AddTransition(q, 0, {a});
  t.AddTransition(q, 0, {b});
  t.AddTransition(a, 1, {});
  t.AddTransition(b, 1, {});
  EXPECT_EQ(ExactCountNftaTrees(t, 2)->ToDecimalString(), "1");
}

TEST(ExactNftaCountTest, RejectsLambda) {
  Nfta t;
  StateId q = t.AddState();
  StateId r = t.AddState();
  t.SetInitialState(q);
  t.AddTransition(q, Nfta::kLambdaSymbol, {r});
  EXPECT_FALSE(ExactCountNftaTrees(t, 1).ok());
}

// -------------------------------------------------- CountNFA vs exact ----

Nfa RandomNfa(Rng* rng, size_t states, size_t alphabet, size_t transitions) {
  Nfa nfa;
  for (size_t i = 0; i < states; ++i) nfa.AddState();
  nfa.EnsureAlphabetSize(alphabet);
  nfa.MarkInitial(0);
  nfa.MarkAccepting(static_cast<StateId>(rng->NextBounded(states)));
  nfa.MarkAccepting(static_cast<StateId>(rng->NextBounded(states)));
  for (size_t i = 0; i < transitions; ++i) {
    nfa.AddTransition(static_cast<StateId>(rng->NextBounded(states)),
                      static_cast<SymbolId>(rng->NextBounded(alphabet)),
                      static_cast<StateId>(rng->NextBounded(states)));
  }
  return nfa;
}

class CountNfaRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CountNfaRandom, WithinEpsilonOfExact) {
  Rng rng(GetParam());
  Nfa nfa = RandomNfa(&rng, 3 + rng.NextBounded(4), 2 + rng.NextBounded(2),
                      8 + rng.NextBounded(8));
  const size_t n = 4 + rng.NextBounded(5);
  auto exact = ExactCountNfaStrings(nfa, n);
  ASSERT_TRUE(exact.ok());
  auto est = CountNfaStrings(nfa, n, TestConfig(0.1, GetParam() * 31 + 1));
  ASSERT_TRUE(est.ok());
  const double truth = exact->ToDouble();
  const double approx = est->value.ToDouble();
  if (truth == 0.0) {
    EXPECT_EQ(approx, 0.0);
  } else {
    // Allow a generous 1.35x band: the estimator's guarantee is
    // probabilistic and these are single runs with bounded pools.
    EXPECT_GT(approx, truth / 1.35) << "n=" << n << " truth=" << truth;
    EXPECT_LT(approx, truth * 1.35) << "n=" << n << " truth=" << truth;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountNfaRandom,
                         ::testing::Range<uint64_t>(1, 41));

TEST(CountNfaTest, EmptyLanguageGivesZero) {
  Nfa nfa;
  StateId s = nfa.AddState();
  nfa.MarkInitial(s);
  nfa.AddTransition(s, 0, s);
  auto est = CountNfaStrings(nfa, 5, TestConfig());
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->value.IsZero());
}

TEST(CountNfaTest, RejectsBadEpsilon) {
  Nfa nfa;
  nfa.AddState();
  nfa.MarkInitial(0);
  nfa.MarkAccepting(0);
  EstimatorConfig cfg;
  cfg.epsilon = 0.0;
  EXPECT_FALSE(CountNfaStrings(nfa, 1, cfg).ok());
  cfg.epsilon = 1.5;
  EXPECT_FALSE(CountNfaStrings(nfa, 1, cfg).ok());
}

TEST(CountNfaTest, ExactOnUnambiguousChain) {
  // Deterministic chain: exactly one string of length 3.
  Nfa nfa;
  for (int i = 0; i < 4; ++i) nfa.AddState();
  nfa.MarkInitial(0);
  nfa.MarkAccepting(3);
  nfa.AddTransition(0, 0, 1);
  nfa.AddTransition(1, 1, 2);
  nfa.AddTransition(2, 0, 3);
  auto est = CountNfaStrings(nfa, 3, TestConfig());
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->value.ToDouble(), 1.0, 1e-9);
}

// ------------------------------------------------- CountNFTA vs exact ----

Nfta RandomNfta(Rng* rng, size_t states, size_t alphabet,
                size_t transitions) {
  Nfta t;
  for (size_t i = 0; i < states; ++i) t.AddState();
  t.EnsureAlphabetSize(alphabet);
  t.SetInitialState(0);
  // Guarantee productivity: every state gets a leaf rule with some symbol.
  for (size_t q = 0; q < states; ++q) {
    t.AddTransition(static_cast<StateId>(q),
                    static_cast<SymbolId>(rng->NextBounded(alphabet)), {});
  }
  for (size_t i = 0; i < transitions; ++i) {
    const size_t arity = 1 + rng->NextBounded(2);
    std::vector<StateId> children;
    for (size_t j = 0; j < arity; ++j) {
      children.push_back(static_cast<StateId>(rng->NextBounded(states)));
    }
    t.AddTransition(static_cast<StateId>(rng->NextBounded(states)),
                    static_cast<SymbolId>(rng->NextBounded(alphabet)),
                    std::move(children));
  }
  return t;
}

class CountNftaRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CountNftaRandom, WithinEpsilonOfExact) {
  Rng rng(GetParam() + 1000);
  Nfta t = RandomNfta(&rng, 2 + rng.NextBounded(3), 2 + rng.NextBounded(2),
                      3 + rng.NextBounded(4));
  const size_t n = 3 + rng.NextBounded(4);
  auto exact = ExactCountNftaTrees(t, n);
  ASSERT_TRUE(exact.ok());
  auto est = CountNftaTrees(t, n, TestConfig(0.1, GetParam() * 77 + 5));
  ASSERT_TRUE(est.ok());
  const double truth = exact->ToDouble();
  const double approx = est->value.ToDouble();
  if (truth == 0.0) {
    EXPECT_EQ(approx, 0.0);
  } else {
    EXPECT_GT(approx, truth / 1.35) << "n=" << n << " truth=" << truth;
    EXPECT_LT(approx, truth * 1.35) << "n=" << n << " truth=" << truth;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountNftaRandom,
                         ::testing::Range<uint64_t>(1, 41));

TEST(CountNftaTest, RequiresLambdaFree) {
  Nfta t;
  StateId q = t.AddState();
  StateId r = t.AddState();
  t.SetInitialState(q);
  t.AddTransition(q, Nfta::kLambdaSymbol, {r});
  t.AddTransition(r, 0, {});
  EXPECT_EQ(CountNftaTrees(t, 1, TestConfig()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CountNftaTest, SizeZeroIsEmpty) {
  Nfta t;
  StateId q = t.AddState();
  t.SetInitialState(q);
  t.AddTransition(q, 0, {});
  auto est = CountNftaTrees(t, 0, TestConfig());
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->value.IsZero());
}

TEST(CountNftaTest, DeterministicForSeed) {
  Rng rng(4242);
  Nfta t = RandomNfta(&rng, 4, 2, 6);
  auto a = CountNftaTrees(t, 5, TestConfig(0.2, 9));
  auto b = CountNftaTrees(t, 5, TestConfig(0.2, 9));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->value.Compare(b->value), 0);
}

TEST(CountNftaTest, MedianOfRepetitionsIsWithinSpread) {
  Rng rng(777);
  Nfta t = RandomNfta(&rng, 4, 2, 6);
  const size_t n = 6;
  auto exact = ExactCountNftaTrees(t, n).MoveValue();
  EstimatorConfig cfg = TestConfig(0.15, 31);
  cfg.repetitions = 5;
  auto est = CountNftaTrees(t, n, cfg);
  ASSERT_TRUE(est.ok());
  const double truth = exact.ToDouble();
  if (truth > 0.0) {
    EXPECT_NEAR(est->value.ToDouble() / truth, 1.0, 0.3);
  }
  // Deterministic under amplification too.
  auto est2 = CountNftaTrees(t, n, cfg);
  ASSERT_TRUE(est2.ok());
  EXPECT_EQ(est->value.Compare(est2->value), 0);
}

TEST(CountNfaTest, MedianOfRepetitionsRuns) {
  Nfa nfa;
  StateId s0 = nfa.AddState();
  StateId s1 = nfa.AddState();
  nfa.MarkInitial(s0);
  nfa.MarkAccepting(s1);
  nfa.AddTransition(s0, 0, s1);
  nfa.AddTransition(s0, 1, s1);
  nfa.AddTransition(s1, 0, s0);
  EstimatorConfig cfg = TestConfig(0.2, 5);
  cfg.repetitions = 3;
  auto est = CountNfaStrings(nfa, 5, cfg);
  ASSERT_TRUE(est.ok());
  auto exact = ExactCountNfaStrings(nfa, 5).MoveValue();
  EXPECT_NEAR(est->value.ToDouble(), exact.ToDouble(),
              0.3 * exact.ToDouble() + 1e-9);
}

TEST(CountStatsTest, ToStringMentionsAllFields) {
  CountStats stats;
  stats.strata_total = 10;
  stats.strata_live = 4;
  std::string s = stats.ToString();
  EXPECT_NE(s.find("strata_total=10"), std::string::npos);
  EXPECT_NE(s.find("strata_live=4"), std::string::npos);
  // Every field in the canonical list must be rendered.
#define PQE_COUNT_STATS_EXPECT(field) \
  EXPECT_NE(s.find(#field "="), std::string::npos) << #field;
  PQE_COUNT_STATS_FIELDS(PQE_COUNT_STATS_EXPECT)
#undef PQE_COUNT_STATS_EXPECT
}

}  // namespace
}  // namespace pqe
