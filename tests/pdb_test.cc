// Unit tests for the pdb module: schemas, databases, and tuple-independent
// probabilistic databases.

#include <gtest/gtest.h>

#include "pdb/database.h"
#include "pdb/probabilistic_database.h"
#include "pdb/schema.h"

namespace pqe {
namespace {

Schema TwoRelationSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddRelation("R", 2).ok());
  EXPECT_TRUE(schema.AddRelation("S", 1).ok());
  return schema;
}

TEST(SchemaTest, AddAndFind) {
  Schema schema = TwoRelationSchema();
  EXPECT_EQ(schema.NumRelations(), 2u);
  auto r = schema.FindRelation("R");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(schema.Arity(*r), 2u);
  EXPECT_EQ(schema.Name(*r), "R");
  EXPECT_TRUE(schema.HasRelation("S"));
  EXPECT_FALSE(schema.HasRelation("T"));
  EXPECT_EQ(schema.FindRelation("T").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, RejectsBadRelations) {
  Schema schema = TwoRelationSchema();
  EXPECT_EQ(schema.AddRelation("R", 2).status().code(),
            StatusCode::kInvalidArgument);  // duplicate
  EXPECT_FALSE(schema.AddRelation("", 1).ok());
  EXPECT_FALSE(schema.AddRelation("Z", 0).ok());
}

TEST(DatabaseTest, AddFactsAndDeduplicate) {
  Database db(TwoRelationSchema());
  auto f1 = db.AddFactByName("R", {"a", "b"});
  ASSERT_TRUE(f1.ok());
  auto f2 = db.AddFactByName("R", {"a", "b"});
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(*f1, *f2);  // duplicate returns the same id
  EXPECT_EQ(db.NumFacts(), 1u);
  ASSERT_TRUE(db.AddFactByName("S", {"a"}).ok());
  EXPECT_EQ(db.NumFacts(), 2u);
  EXPECT_EQ(db.FactToString(0), "R(a,b)");
  EXPECT_EQ(db.FactToString(1), "S(a)");
}

TEST(DatabaseTest, FactsOfKeepsInsertionOrder) {
  Database db(TwoRelationSchema());
  ASSERT_TRUE(db.AddFactByName("R", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("S", {"x"}).ok());
  ASSERT_TRUE(db.AddFactByName("R", {"b", "c"}).ok());
  RelationId r = db.schema().FindRelation("R").value();
  const auto& facts = db.FactsOf(r);
  ASSERT_EQ(facts.size(), 2u);
  EXPECT_EQ(db.FactToString(facts[0]), "R(a,b)");
  EXPECT_EQ(db.FactToString(facts[1]), "R(b,c)");
}

TEST(DatabaseTest, ContainsAndFindFact) {
  Database db(TwoRelationSchema());
  ASSERT_TRUE(db.AddFactByName("R", {"a", "b"}).ok());
  RelationId r = db.schema().FindRelation("R").value();
  Fact present{r, {db.InternValue("a"), db.InternValue("b")}};
  Fact absent{r, {db.InternValue("b"), db.InternValue("a")}};
  EXPECT_TRUE(db.Contains(present));
  EXPECT_FALSE(db.Contains(absent));
  EXPECT_EQ(db.FindFact(present), 0);
  EXPECT_EQ(db.FindFact(absent), -1);
}

TEST(DatabaseTest, RejectsArityMismatchAndUnknownRelation) {
  Database db(TwoRelationSchema());
  EXPECT_EQ(db.AddFactByName("R", {"a"}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.AddFactByName("Q", {"a"}).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(db.AddFact(77, {0, 0}).ok());
}

TEST(DatabaseTest, ValueInterningIsIdempotent) {
  Database db(TwoRelationSchema());
  ValueId a1 = db.InternValue("a");
  ValueId a2 = db.InternValue("a");
  ValueId b = db.InternValue("b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(db.ValueName(a1), "a");
  EXPECT_EQ(db.NumValues(), 2u);
}

// -------------------------------------------------- ProbabilisticDatabase --

TEST(ProbabilityTest, MakeValidatesBounds) {
  EXPECT_TRUE(Probability::Make(1, 2).ok());
  EXPECT_TRUE(Probability::Make(0, 1).ok());
  EXPECT_TRUE(Probability::Make(5, 5).ok());
  EXPECT_FALSE(Probability::Make(3, 2).ok());
  EXPECT_FALSE(Probability::Make(1, 0).ok());
  EXPECT_EQ(Probability::Half().ToDouble(), 0.5);
  EXPECT_TRUE(Probability::Half() == (Probability{2, 4}));
}

ProbabilisticDatabase SmallPdb() {
  Database db(TwoRelationSchema());
  EXPECT_TRUE(db.AddFactByName("R", {"a", "b"}).ok());
  EXPECT_TRUE(db.AddFactByName("S", {"a"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  EXPECT_TRUE(pdb.SetProbability(0, Probability{1, 3}).ok());
  EXPECT_TRUE(pdb.SetProbability(1, Probability{3, 4}).ok());
  return pdb;
}

TEST(ProbabilisticDatabaseTest, CommonDenominator) {
  ProbabilisticDatabase pdb = SmallPdb();
  EXPECT_EQ(pdb.CommonDenominator().ToDecimalString(), "12");
}

TEST(ProbabilisticDatabaseTest, SubinstanceProbability) {
  ProbabilisticDatabase pdb = SmallPdb();
  // {R(a,b) present, S(a) absent}: (1/3) * (1/4) = 1/12.
  BigRational p = pdb.SubinstanceProbability({true, false});
  EXPECT_EQ(p.Normalized().ToString(), "1/12");
  // Sum over all four worlds is 1.
  BigRational total;
  for (bool x : {false, true}) {
    for (bool y : {false, true}) {
      total = total.Add(pdb.SubinstanceProbability({x, y}));
    }
  }
  EXPECT_EQ(total.Compare(BigRational::One()), 0);
}

TEST(ProbabilisticDatabaseTest, MakeValidatesSizes) {
  Database db(TwoRelationSchema());
  ASSERT_TRUE(db.AddFactByName("R", {"a", "b"}).ok());
  EXPECT_FALSE(ProbabilisticDatabase::Make(db, {}).ok());
  EXPECT_FALSE(
      ProbabilisticDatabase::Make(db, {Probability{9, 4}}).ok());
  EXPECT_TRUE(
      ProbabilisticDatabase::Make(db, {Probability{1, 4}}).ok());
}

TEST(ProbabilisticDatabaseTest, SetProbabilityErrors) {
  ProbabilisticDatabase pdb = SmallPdb();
  EXPECT_EQ(pdb.SetProbability(99, Probability::Half()).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(pdb.SetProbability(0, Probability{7, 2}).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProbabilisticDatabaseTest, SizeInBitsCountsEncodings) {
  ProbabilisticDatabase pdb = SmallPdb();
  // |D| = 2 plus bits of 1/3 (1 + 2) and 3/4 (2 + 3).
  EXPECT_EQ(pdb.SizeInBits(), 2u + 3u + 5u);
}

TEST(ProbabilisticDatabaseTest, AddFactCarriesProbability) {
  Database db(TwoRelationSchema());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  auto id = pdb.AddFact("R", {"x", "y"}, Probability{2, 5});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(pdb.probability(*id) == (Probability{2, 5}));
  EXPECT_FALSE(pdb.AddFact("R", {"x", "y"}, Probability{9, 5}).ok());
}

}  // namespace
}  // namespace pqe
