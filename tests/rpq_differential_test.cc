// Differential suite for the RPQ lowering contract (docs/rpq.md): a
// concatenation-only regex IS a linear path query, and its answers must be
// bit-identical to the legacy path_pqe route — same skeleton, same bind,
// same sampler draws. Random instances sweep query length, graph shape, and
// seeds; every comparison is memcmp on the probability's bits, in both
// kernel modes, across thread counts, and through the serving layer.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "cq/builders.h"
#include "rpq/eval.h"
#include "rpq/regex.h"
#include "serve/service.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace {

struct Instance {
  QueryInstance qi;
  ProbabilisticDatabase pdb;
  rpq::RpqQuery rpq;
};

// A random linear-path instance: the concat-only regex spelled from the
// path query's relation names, so the two routes ask the same question.
Instance MakeInstance(uint64_t seed) {
  Rng rng(seed);
  const uint32_t length = 2 + static_cast<uint32_t>(rng.NextBounded(3));
  auto qi = MakePathQuery(length).MoveValue();
  LayeredGraphOptions gopt;
  // Kept small: the point is route identity, not load — word length grows
  // with facts × denominators and large draws here just burn minutes.
  gopt.width = 2 + static_cast<uint32_t>(rng.NextBounded(2));
  gopt.density = 0.4 + 0.2 * static_cast<double>(rng.NextBounded(3));
  gopt.seed = rng.NextBounded(1u << 20);
  auto db = MakeLayeredPathDatabase(qi, gopt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 2 + rng.NextBounded(7);
  pm.seed = rng.NextBounded(1u << 20);
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

  std::string text;
  for (size_t i = 0; i < qi.query.NumAtoms(); ++i) {
    if (!text.empty()) text += "/";
    text += qi.schema.Name(qi.query.atom(i).relation);
  }
  auto rq = rpq::RpqQuery::Parse(text).MoveValue();
  EXPECT_TRUE(rq.IsLinearChain());
  return Instance{std::move(qi), std::move(pdb), std::move(rq)};
}

void ExpectBitIdentical(const EvalResponse& a, const EvalResponse& b,
                        const std::string& what) {
  ASSERT_TRUE(a.status.ok()) << what << ": " << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << what << ": " << b.status.ToString();
  EXPECT_EQ(std::memcmp(&a.answer.probability, &b.answer.probability,
                        sizeof(double)),
            0)
      << what << ": rpq=" << a.answer.probability
      << " path=" << b.answer.probability;
}

TEST(RpqDifferentialTest, ConcatOnlyRegexMatchesPathRouteBitForBit) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Instance in = MakeInstance(seed);
    for (KernelMode kernels : {KernelMode::kExact, KernelMode::kFast}) {
      for (size_t threads : {size_t{1}, size_t{3}}) {
        auto opts = PqeEngine::Options::Builder()
                        .Method(PqeMethod::kFpras)
                        .Epsilon(0.3)
                        .Seed(0xd1f ^ seed)
                        .PoolSize(32)
                        .Repetitions(threads)  // exercise the parallel reps
                        .NumThreads(threads)
                        .Kernels(kernels)
                        .Build();
        ASSERT_TRUE(opts.ok());
        PqeEngine engine(*opts);
        const EvalResponse via_rpq =
            engine.EvaluateRequest(EvalRequest::ForRpq(in.rpq, in.pdb));
        const EvalResponse via_path =
            engine.EvaluateRequest(EvalRequest::ForQuery(in.qi.query, in.pdb));
        ExpectBitIdentical(
            via_rpq, via_path,
            "seed " + std::to_string(seed) + " kernels " +
                KernelModeToString(kernels) + " threads " +
                std::to_string(threads));
      }
    }
  }
}

TEST(RpqDifferentialTest, LoweringProducesThePathSkeletonExactly) {
  // Not just equal answers: the exact counts agree too, so the lowering is
  // the identical construction, not a numerically-close cousin.
  for (uint64_t seed : {21u, 22u, 23u}) {
    Instance in = MakeInstance(seed);
    auto rpq_exact = rpq::RpqExact(in.rpq, in.pdb);
    ASSERT_TRUE(rpq_exact.ok()) << rpq_exact.status().ToString();
    auto path_exact = PathPqeExact(in.qi.query, in.pdb);
    ASSERT_TRUE(path_exact.ok());
    EXPECT_EQ(rpq_exact->Compare(*path_exact), 0)
        << "seed " << seed << ": rpq " << rpq_exact->ToString() << " vs path "
        << path_exact->ToString();
  }
}

TEST(RpqDifferentialTest, ServedRpqMatchesServedPathBitForBit) {
  // The serving layer's prepared RPQ route against its prepared CQ route:
  // same lowered skeleton, same binds, same answers.
  for (uint64_t seed : {31u, 32u}) {
    Instance in = MakeInstance(seed);
    auto opts = PqeEngine::Options::Builder()
                    .Method(PqeMethod::kFpras)
                    .Epsilon(0.3)
                    .Seed(0x5e0 ^ seed)
                    .PoolSize(32)
                    .Repetitions(1)
                    .NumThreads(1)
                    .Build();
    ASSERT_TRUE(opts.ok());
    serve::PqeService::Options sopt;
    sopt.engine = *opts;
    sopt.num_threads = 1;
    serve::PqeService service(sopt);

    std::vector<EvalRequest> reqs;
    for (size_t i = 0; i < 4; ++i) {
      EvalRequest r = EvalRequest::ForRpq(in.rpq, in.pdb);
      r.request_id = 2 * i + 1;
      r.seed = 0x9e1 + i;
      reqs.push_back(r);
      EvalRequest p = EvalRequest::ForQuery(in.qi.query, in.pdb);
      p.request_id = 2 * i + 2;
      p.seed = 0x9e1 + i;
      reqs.push_back(p);
    }
    const std::vector<EvalResponse> resp = service.EvaluateBatch(reqs);
    ASSERT_EQ(resp.size(), reqs.size());
    for (size_t i = 0; i < resp.size(); i += 2) {
      ExpectBitIdentical(resp[i], resp[i + 1],
                         "seed " + std::to_string(seed) + " pair " +
                             std::to_string(i / 2));
    }
  }
}

}  // namespace
}  // namespace pqe
