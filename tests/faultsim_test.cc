// The sharded-serving contract (docs/serving.md): routing follows the
// prepared-cache content key, a sharded batch is bit-identical to the
// single-service batch, lost shards degrade to retries and then to typed
// kPartialResult outcomes, and the fault-injection harness is deterministic
// — its schedule is a pure function of the seed, surviving answers match
// the unfaulted run bit for bit, and a failing seed replays exactly.

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "cq/builders.h"
#include "serve/faultsim.h"
#include "serve/router.h"
#include "serve/service.h"
#include "serve/shard.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace serve {
namespace {

PqeEngine::Options EngineOptions() {
  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kFpras)
                  .Epsilon(0.3)
                  .Seed(0xfeed)
                  .PoolSize(32)
                  .Repetitions(1)
                  .NumThreads(1)
                  .Build();
  EXPECT_TRUE(opts.ok()) << opts.status().ToString();
  return *opts;
}

ShardRouter::Options RouterOptions(size_t num_shards, size_t max_attempts) {
  ShardRouter::Options ropt;
  ropt.num_shards = num_shards;
  ropt.max_attempts = max_attempts;
  ropt.num_threads = 1;
  ropt.service.engine = EngineOptions();
  ropt.service.num_threads = 1;
  return ropt;
}

struct PathFixture {
  QueryInstance qi;
  ProbabilisticDatabase pdb;
};

PathFixture MakePathFixture(uint32_t length, uint64_t seed) {
  auto qi = MakePathQuery(length).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 0.8;
  opt.seed = seed;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = seed + 1;
  return {std::move(qi), AttachProbabilities(std::move(db), pm)};
}

std::vector<EvalRequest> MakeRequests(const std::vector<PathFixture>& fx,
                                      size_t count) {
  std::vector<EvalRequest> reqs;
  for (size_t i = 0; i < count; ++i) {
    const PathFixture& f = fx[i % fx.size()];
    EvalRequest r = EvalRequest::ForQuery(f.qi.query, f.pdb);
    r.request_id = i + 1;
    reqs.push_back(r);
  }
  return reqs;
}

TEST(ShardTest, CrashedShardIsUnavailable) {
  PqeService::Options sopt;
  sopt.engine = EngineOptions();
  Shard shard(0, sopt);
  PathFixture f = MakePathFixture(2, 3);
  EvalRequest req = EvalRequest::ForQuery(f.qi.query, f.pdb);
  req.request_id = 1;

  auto before = shard.Serve(req);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(shard.served(), 1u);

  shard.Crash();
  EXPECT_FALSE(shard.alive());
  auto after = shard.Serve(req);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(shard.served(), 1u);
}

TEST(ShardRouterTest, RoutesByPreparedContentKey) {
  ShardRouter router(RouterOptions(4, 1));
  PathFixture a = MakePathFixture(2, 3);
  PathFixture b = MakePathFixture(3, 9);

  EvalRequest ra = EvalRequest::ForQuery(a.qi.query, a.pdb);
  EvalRequest rb = EvalRequest::ForQuery(b.qi.query, b.pdb);
  // The routing key is the content key: request ids don't move a query.
  ra.request_id = 1;
  const size_t shard_a = router.Route(ra);
  ra.request_id = 999;
  EXPECT_EQ(router.Route(ra), shard_a);
  // An equal (query, facts) pair routes identically through a fresh router.
  ShardRouter router2(RouterOptions(4, 1));
  EXPECT_EQ(router2.Route(ra), shard_a);
  // Changing the facts changes the content key, hence (usually) the shard;
  // a family of distinct fixtures must not all pile onto shard_a.
  bool spreads = router.Route(rb) != shard_a;
  for (uint64_t seed = 20; seed <= 40 && !spreads; ++seed) {
    PathFixture c = MakePathFixture(2 + seed % 3, seed);
    EvalRequest rc = EvalRequest::ForQuery(c.qi.query, c.pdb);
    spreads = router.Route(rc) != shard_a;
  }
  EXPECT_TRUE(spreads);
}

TEST(ShardRouterTest, ShardedBatchMatchesSingleService) {
  std::vector<PathFixture> fx;
  fx.push_back(MakePathFixture(2, 3));
  fx.push_back(MakePathFixture(3, 9));
  fx.push_back(MakePathFixture(4, 17));
  const std::vector<EvalRequest> reqs = MakeRequests(fx, 12);

  PqeService::Options sopt;
  sopt.engine = EngineOptions();
  PqeService single(sopt);
  std::vector<EvalResponse> truth = single.EvaluateBatch(reqs);

  ShardRouter router(RouterOptions(3, 2));
  ShardRouter::BatchResult sharded = router.EvaluateBatch(reqs);
  ASSERT_TRUE(sharded.status.ok()) << sharded.status.ToString();
  EXPECT_EQ(sharded.answered, reqs.size());
  ASSERT_EQ(sharded.responses.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    ASSERT_TRUE(sharded.responses[i].status.ok());
    EXPECT_EQ(std::memcmp(&sharded.responses[i].answer.probability,
                          &truth[i].answer.probability, sizeof(double)),
              0)
        << "request " << i;
  }
}

TEST(ShardRouterTest, RetriesOntoBackupShardAfterCrash) {
  std::vector<PathFixture> fx;
  fx.push_back(MakePathFixture(2, 3));
  const std::vector<EvalRequest> reqs = MakeRequests(fx, 1);

  ShardRouter healthy(RouterOptions(3, 2));
  const EvalResponse want = healthy.Evaluate(reqs[0]);
  ASSERT_TRUE(want.status.ok());

  ShardRouter router(RouterOptions(3, 2));
  router.cluster().shard(router.Route(reqs[0])).Crash();
  const EvalResponse got = router.Evaluate(reqs[0]);
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  // The backup's answer is bit-identical: answers are functions of
  // (request, seed), not of the shard that computes them.
  EXPECT_EQ(std::memcmp(&got.answer.probability, &want.answer.probability,
                        sizeof(double)),
            0);
  EXPECT_EQ(router.stats().retries, 1u);
  EXPECT_EQ(router.stats().lost, 0u);
}

TEST(ShardRouterTest, AllShardsLostYieldsTypedPartialResult) {
  std::vector<PathFixture> fx;
  fx.push_back(MakePathFixture(2, 3));
  const std::vector<EvalRequest> reqs = MakeRequests(fx, 4);

  ShardRouter router(RouterOptions(2, 2));
  router.cluster().shard(0).Crash();
  router.cluster().shard(1).Crash();
  ShardRouter::BatchResult out = router.EvaluateBatch(reqs);
  EXPECT_EQ(out.answered, 0u);
  EXPECT_EQ(out.lost, reqs.size());
  EXPECT_EQ(out.failed, 0u);
  EXPECT_EQ(out.status.code(), StatusCode::kPartialResult);
  for (const EvalResponse& resp : out.responses) {
    EXPECT_EQ(resp.status.code(), StatusCode::kPartialResult);
  }
  EXPECT_EQ(router.stats().lost, reqs.size());
}

TEST(ShardRouterTest, PartialBatchKeepsSurvivingAnswers) {
  // Pick two fixtures that route to DIFFERENT shards of a 2-shard cluster,
  // so killing one shard splits the batch into survivors and losses.
  ShardRouter probe(RouterOptions(2, 1));
  std::vector<PathFixture> fx;
  fx.push_back(MakePathFixture(2, 3));
  {
    EvalRequest r0 = EvalRequest::ForQuery(fx[0].qi.query, fx[0].pdb);
    const size_t shard0 = probe.Route(r0);
    for (uint64_t seed = 9; fx.size() < 2; ++seed) {
      ASSERT_LT(seed, 64u) << "no fixture routed off shard " << shard0;
      PathFixture c = MakePathFixture(2 + seed % 3, seed);
      EvalRequest rc = EvalRequest::ForQuery(c.qi.query, c.pdb);
      if (probe.Route(rc) != shard0) fx.push_back(std::move(c));
    }
  }
  const std::vector<EvalRequest> reqs = MakeRequests(fx, 8);

  ShardRouter healthy(RouterOptions(2, 1));
  const ShardRouter::BatchResult want = healthy.EvaluateBatch(reqs);
  ASSERT_TRUE(want.status.ok());

  // max_attempts = 1: no backup, so killing one shard loses exactly the
  // requests routed there and nothing else.
  ShardRouter router(RouterOptions(2, 1));
  const size_t dead = router.Route(reqs[0]);
  router.cluster().shard(dead).Crash();
  const ShardRouter::BatchResult got = router.EvaluateBatch(reqs);
  EXPECT_EQ(got.status.code(), StatusCode::kPartialResult);
  EXPECT_GT(got.answered, 0u);
  EXPECT_GT(got.lost, 0u);
  EXPECT_EQ(got.answered + got.lost, reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (router.Route(reqs[i]) == dead) {
      EXPECT_EQ(got.responses[i].status.code(), StatusCode::kPartialResult);
    } else {
      ASSERT_TRUE(got.responses[i].status.ok());
      EXPECT_EQ(std::memcmp(&got.responses[i].answer.probability,
                            &want.responses[i].answer.probability,
                            sizeof(double)),
                0);
    }
  }
}

// A transport whose first attempt always comes back deadline-expired (as a
// hedged slice would): the router must re-issue to the backup shard and
// return its (bit-identical) full answer.
class FirstAttemptExpiresTransport : public ShardTransport {
 public:
  explicit FirstAttemptExpiresTransport(ShardCluster* cluster)
      : direct_(cluster) {}

  Result<EvalResponse> Call(const ShardCall& call,
                            const EvalRequest& request) override {
    if (call.attempt == 0) {
      EvalResponse resp;
      resp.request_id = call.request_id;
      resp.status = Status::DeadlineExceeded("hedge slice expired");
      resp.deadline_exceeded = true;
      return resp;
    }
    EvalRequest full = request;
    full.deadline_ms = 0;  // the backup gets an uncapped run
    return direct_.Call(call, full);
  }

 private:
  DirectTransport direct_;
};

TEST(ShardRouterTest, HedgedRetryReissuesToBackup) {
  std::vector<PathFixture> fx;
  fx.push_back(MakePathFixture(2, 3));
  std::vector<EvalRequest> reqs = MakeRequests(fx, 1);
  reqs[0].deadline_ms = 60000;  // ample budget: only the hedge slice expires

  ShardRouter healthy(RouterOptions(2, 2));
  const EvalResponse want = healthy.Evaluate(reqs[0]);
  ASSERT_TRUE(want.status.ok());

  ShardRouter router(RouterOptions(2, 2), [](ShardCluster* cluster) {
    return std::make_unique<FirstAttemptExpiresTransport>(cluster);
  });
  const EvalResponse got = router.Evaluate(reqs[0]);
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  EXPECT_FALSE(got.deadline_exceeded);
  EXPECT_EQ(std::memcmp(&got.answer.probability, &want.answer.probability,
                        sizeof(double)),
            0);
  EXPECT_EQ(router.stats().hedges, 1u);
}

TEST(FaultSimTest, DecideFaultIsAPureFunctionOfSeedAndCall) {
  FaultSpec spec;
  spec.crash_rate = 0.2;
  spec.drop_rate = 0.3;
  spec.delay_rate = 0.5;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    for (size_t shard = 0; shard < 3; ++shard) {
      for (uint64_t req = 1; req <= 20; ++req) {
        ShardCall call{shard, req, 0};
        const FaultDecision a = DecideFault(seed, call, spec);
        const FaultDecision b = DecideFault(seed, call, spec);
        EXPECT_EQ(a.crash, b.crash);
        EXPECT_EQ(a.drop, b.drop);
        EXPECT_EQ(a.delay_ms, b.delay_ms);
        EXPECT_FALSE(a.crash && a.drop);
      }
    }
  }
}

TEST(FaultSimTest, AttemptsDrawIndependentDecisions) {
  // The backup attempt of a dropped call must not deterministically drop
  // too, or retries would be useless; distinct attempts get distinct coins.
  FaultSpec spec;
  spec.crash_rate = 0.0;
  spec.drop_rate = 0.5;
  spec.delay_rate = 0.0;
  bool differs = false;
  for (uint64_t req = 1; req <= 32 && !differs; ++req) {
    ShardCall first{0, req, 0};
    ShardCall second{0, req, 1};
    const FaultDecision a = DecideFault(7, first, spec);
    const FaultDecision b = DecideFault(7, second, spec);
    differs = a.drop != b.drop;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultSimTest, SurvivorsBitIdenticalAndReplayExactAcrossSeeds) {
  // The CI sweep in miniature: every seed must satisfy the harness contract
  // — zero mismatched survivors, zero definitive failures, exact replay.
  uint64_t total_injected = 0;
  size_t seeds_with_loss = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    FaultSimOptions opt;
    opt.seed = seed;
    opt.num_shards = 3;
    opt.max_attempts = 2;
    opt.requests = 18;
    opt.variants = 3;
    opt.faults.crash_rate = 0.10;
    opt.faults.drop_rate = 0.15;
    opt.faults.delay_rate = 0.2;
    auto report = RunFaultSim(opt);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok()) << report->Summary();
    EXPECT_EQ(report->mismatched, 0u) << report->Summary();
    EXPECT_TRUE(report->replay_identical) << report->Summary();
    EXPECT_EQ(report->answered + report->lost + report->failed,
              report->requests);
    total_injected += report->crashes + report->drops + report->delays;
    if (report->lost > 0) ++seeds_with_loss;
  }
  // The sweep must actually exercise the machinery, not pass vacuously.
  EXPECT_GT(total_injected, 0u);
  EXPECT_GT(seeds_with_loss, 0u);
}

TEST(FaultSimTest, QuietScheduleLosesNothing) {
  FaultSimOptions opt;
  opt.seed = 11;
  opt.requests = 8;
  opt.variants = 2;
  opt.faults.crash_rate = 0.0;
  opt.faults.drop_rate = 0.0;
  opt.faults.delay_rate = 0.0;
  auto report = RunFaultSim(opt);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->answered, report->requests);
  EXPECT_EQ(report->lost, 0u);
  EXPECT_EQ(report->crashes + report->drops + report->delays, 0u);
}

TEST(FaultSimTest, RejectsEmptyWorkload) {
  FaultSimOptions opt;
  opt.requests = 0;
  auto report = RunFaultSim(opt);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace serve
}  // namespace pqe
