// Unit tests for the cq module: query construction, parsing, and the
// structural analyses (self-join-freeness, hierarchy, path shape).

#include <gtest/gtest.h>

#include "cq/builders.h"
#include "cq/parser.h"
#include "cq/query.h"

namespace pqe {
namespace {

Schema PathSchema(int n) {
  Schema schema;
  for (int i = 1; i <= n; ++i) {
    EXPECT_TRUE(schema.AddRelation("R" + std::to_string(i), 2).ok());
  }
  return schema;
}

TEST(QueryBuilderTest, InternsVariablesAcrossAtoms) {
  Schema schema = PathSchema(2);
  ConjunctiveQuery::Builder builder(&schema);
  ASSERT_TRUE(builder.AddAtom("R1", {"x", "y"}).ok());
  ASSERT_TRUE(builder.AddAtom("R2", {"y", "z"}).ok());
  auto q = builder.Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->NumAtoms(), 2u);
  EXPECT_EQ(q->NumVars(), 3u);
  // y is shared: it occurs in both atoms.
  bool found_shared = false;
  for (VarId v = 0; v < q->NumVars(); ++v) {
    if (q->VarName(v) == "y") {
      EXPECT_EQ(q->AtomsOfVar(v).size(), 2u);
      found_shared = true;
    }
  }
  EXPECT_TRUE(found_shared);
}

TEST(QueryBuilderTest, RejectsBadAtoms) {
  Schema schema = PathSchema(1);
  {
    ConjunctiveQuery::Builder builder(&schema);
    EXPECT_FALSE(builder.AddAtom("NoSuch", {"x", "y"}).ok());
    EXPECT_FALSE(builder.Build().ok());  // failure is sticky
  }
  {
    ConjunctiveQuery::Builder builder(&schema);
    EXPECT_FALSE(builder.AddAtom("R1", {"x"}).ok());  // arity
  }
  {
    ConjunctiveQuery::Builder builder(&schema);
    EXPECT_FALSE(builder.Build().ok());  // no atoms
  }
}

TEST(ParserTest, ParsesWellFormedQueries) {
  Schema schema = PathSchema(2);
  auto q = ParseQuery(schema, " R1( x , y ),R2(y,z) ");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->NumAtoms(), 2u);
  EXPECT_EQ(q->ToString(schema), "R1(x,y), R2(y,z)");
}

TEST(ParserTest, RejectsMalformedQueries) {
  Schema schema = PathSchema(2);
  EXPECT_FALSE(ParseQuery(schema, "").ok());
  EXPECT_FALSE(ParseQuery(schema, "R1(x,y").ok());
  EXPECT_FALSE(ParseQuery(schema, "R1 x,y)").ok());
  EXPECT_FALSE(ParseQuery(schema, "R1(x,y),").ok());
  EXPECT_FALSE(ParseQuery(schema, "R1(x,y) R2(y,z)").ok());
  EXPECT_FALSE(ParseQuery(schema, "R1()").ok());
  EXPECT_FALSE(ParseQuery(schema, "NoSuch(x,y)").ok());
  EXPECT_FALSE(ParseQuery(schema, "R1(x,y,z)").ok());  // arity
}

TEST(ParserTest, ExtendingSchemaInfersArity) {
  Schema schema;
  auto q = ParseQueryExtendingSchema(&schema, "Edge(x,y), Label(x)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(schema.Arity(schema.FindRelation("Edge").value()), 2u);
  EXPECT_EQ(schema.Arity(schema.FindRelation("Label").value()), 1u);
  // Later atom with conflicting arity fails.
  Schema schema2;
  EXPECT_FALSE(
      ParseQueryExtendingSchema(&schema2, "E(x,y), E(x)").ok());
}

TEST(StructureTest, SelfJoinFreeness) {
  Schema schema = PathSchema(2);
  EXPECT_TRUE(ParseQuery(schema, "R1(x,y), R2(y,z)")->IsSelfJoinFree());
  EXPECT_FALSE(ParseQuery(schema, "R1(x,y), R1(y,z)")->IsSelfJoinFree());
}

TEST(StructureTest, HierarchyMatchesDalviSuciuExamples) {
  // Star queries are hierarchical (safe), paths of length >= 2 are not.
  EXPECT_TRUE(MakeStarQuery(3)->query.IsHierarchical());
  EXPECT_TRUE(MakePathQuery(1)->query.IsHierarchical());
  // Length-2 paths are still hierarchical; the 3Path class (length >= 3,
  // Section 1.1) is where #P-hardness kicks in.
  EXPECT_TRUE(MakePathQuery(2)->query.IsHierarchical());
  EXPECT_FALSE(MakePathQuery(3)->query.IsHierarchical());
  EXPECT_FALSE(MakePathQuery(5)->query.IsHierarchical());
  EXPECT_FALSE(MakeH0Query()->query.IsHierarchical());
  EXPECT_FALSE(MakeCaterpillarQuery(3)->query.IsHierarchical());
}

TEST(StructureTest, PathDetection) {
  EXPECT_TRUE(MakePathQuery(1)->query.IsPathQuery());
  EXPECT_TRUE(MakePathQuery(4)->query.IsPathQuery());
  EXPECT_FALSE(MakeStarQuery(2)->query.IsPathQuery());
  EXPECT_FALSE(MakeCycleQuery(3)->query.IsPathQuery());
  EXPECT_FALSE(MakeH0Query()->query.IsPathQuery());
  // Self-join path is still shaped like a path.
  EXPECT_TRUE(MakeSelfJoinPathQuery(3)->query.IsPathQuery());
}

TEST(BuildersTest, FamilyShapes) {
  auto path = MakePathQuery(4).MoveValue();
  EXPECT_EQ(path.query.NumAtoms(), 4u);
  EXPECT_EQ(path.query.NumVars(), 5u);
  EXPECT_TRUE(path.query.IsSelfJoinFree());

  auto star = MakeStarQuery(4).MoveValue();
  EXPECT_EQ(star.query.NumAtoms(), 4u);
  EXPECT_EQ(star.query.NumVars(), 5u);

  auto cycle = MakeCycleQuery(4).MoveValue();
  EXPECT_EQ(cycle.query.NumAtoms(), 4u);
  EXPECT_EQ(cycle.query.NumVars(), 4u);

  auto h0 = MakeH0Query().MoveValue();
  EXPECT_EQ(h0.query.NumAtoms(), 3u);
  EXPECT_TRUE(h0.query.IsSelfJoinFree());

  auto cat = MakeCaterpillarQuery(3).MoveValue();
  EXPECT_EQ(cat.query.NumAtoms(), 2u * 3u - 1u);
  EXPECT_TRUE(cat.query.IsSelfJoinFree());

  auto sj = MakeSelfJoinPathQuery(3).MoveValue();
  EXPECT_FALSE(sj.query.IsSelfJoinFree());
}

TEST(BuildersTest, SnowflakeShapes) {
  auto flake = MakeSnowflakeQuery(3, 2).MoveValue();
  EXPECT_EQ(flake.query.NumAtoms(), 6u);
  EXPECT_EQ(flake.query.NumVars(), 1u + 6u);
  EXPECT_TRUE(flake.query.IsSelfJoinFree());
  EXPECT_FALSE(flake.query.IsHierarchical());  // arms>=2, depth>=2
  // Depth-1 snowflake is a star: hierarchical.
  EXPECT_TRUE(MakeSnowflakeQuery(3, 1)->query.IsHierarchical());
  EXPECT_FALSE(MakeSnowflakeQuery(0, 1).ok());
  EXPECT_FALSE(MakeSnowflakeQuery(1, 0).ok());
}

TEST(BuildersTest, RejectDegenerateSizes) {
  EXPECT_FALSE(MakePathQuery(0).ok());
  EXPECT_FALSE(MakeStarQuery(0).ok());
  EXPECT_FALSE(MakeCycleQuery(1).ok());
  EXPECT_FALSE(MakeCaterpillarQuery(1).ok());
  EXPECT_FALSE(MakeSelfJoinPathQuery(1).ok());
}

// Hierarchy check is decided per connected pair of variables; exercise a
// query mixing disjoint and nested variable scopes.
TEST(StructureTest, HierarchyWithDisjointComponents) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("A", 2).ok());
  ASSERT_TRUE(schema.AddRelation("B", 1).ok());
  ASSERT_TRUE(schema.AddRelation("C", 2).ok());
  // A(x,y), B(x) is hierarchical; C(u,v) is a disjoint component.
  auto q = ParseQuery(schema, "A(x,y), B(x), C(u,v)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->IsHierarchical());
}

}  // namespace
}  // namespace pqe
