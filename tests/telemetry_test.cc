// The serving telemetry plane (docs/serving.md): per-request stats
// aggregated into ServiceStats (cache classes, per-stage quantiles, the
// bounded slow-query log), workload capture records that round-trip through
// JSONL, and the replay oracle — a replayed capture must reproduce every
// recorded answer bit for bit.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "cq/builders.h"
#include "obs/json.h"
#include "serve/service.h"
#include "serve/telemetry.h"
#include "serve/workload.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace serve {
namespace {

// --- ServiceTelemetry aggregation ----------------------------------------

RequestTelemetry MakeRequest(uint64_t id, CacheClass c, uint64_t total_ns) {
  RequestTelemetry t;
  t.request_id = id;
  t.cache_class = c;
  t.status = StatusCode::kOk;
  t.total_ns = total_ns;
  t.estimate_ns = total_ns / 2;
  t.span_excerpt = "excerpt-" + std::to_string(id);
  return t;
}

TEST(ServiceTelemetryTest, AggregatesClassesStatusesAndStages) {
  ServiceTelemetry telemetry(/*slow_log_capacity=*/8);
  telemetry.Record(MakeRequest(1, CacheClass::kColdCompile, 1000));
  telemetry.Record(MakeRequest(2, CacheClass::kAnswerMemo, 10));
  telemetry.Record(MakeRequest(3, CacheClass::kAnswerMemo, 12));
  RequestTelemetry dead = MakeRequest(4, CacheClass::kDelegated, 50);
  dead.status = StatusCode::kDeadlineExceeded;
  dead.deadline_exceeded = true;
  telemetry.Record(dead);
  RequestTelemetry err = MakeRequest(5, CacheClass::kDelegated, 60);
  err.status = StatusCode::kInvalidArgument;
  telemetry.Record(err);

  const ServiceStats stats = telemetry.Snapshot();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.ok, 3u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.by_class[static_cast<size_t>(CacheClass::kColdCompile)],
            1u);
  EXPECT_EQ(stats.by_class[static_cast<size_t>(CacheClass::kAnswerMemo)], 2u);
  EXPECT_EQ(stats.by_class[static_cast<size_t>(CacheClass::kDelegated)], 2u);

  const ServiceStats::StageStats* total = stats.FindStage("total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count, 5u);
  EXPECT_EQ(total->sum_ns, 1000u + 10 + 12 + 50 + 60);
  EXPECT_GT(total->p99_ns, total->p50_ns);
  // Only requests that ran a stage enter its histogram.
  const ServiceStats::StageStats* estimate = stats.FindStage("estimate");
  ASSERT_NE(estimate, nullptr);
  EXPECT_EQ(estimate->count, 5u);
  const ServiceStats::StageStats* compile = stats.FindStage("compile");
  ASSERT_NE(compile, nullptr);
  EXPECT_EQ(compile->count, 0u);
  EXPECT_EQ(stats.FindStage("no_such_stage"), nullptr);
}

TEST(ServiceTelemetryTest, SlowLogIsBoundedAndSortedSlowestFirst) {
  ServiceTelemetry telemetry(/*slow_log_capacity=*/3);
  const uint64_t totals[] = {50, 500, 10, 900, 300, 5, 700};
  uint64_t id = 1;
  for (uint64_t ns : totals) {
    telemetry.Record(MakeRequest(id++, CacheClass::kWarmBind, ns));
  }
  const ServiceStats stats = telemetry.Snapshot();
  ASSERT_EQ(stats.slow_queries.size(), 3u);
  EXPECT_EQ(stats.slow_queries[0].total_ns, 900u);
  EXPECT_EQ(stats.slow_queries[1].total_ns, 700u);
  EXPECT_EQ(stats.slow_queries[2].total_ns, 500u);
  EXPECT_EQ(stats.slow_queries[0].request_id, 4u);
  EXPECT_EQ(stats.slow_queries[0].span_excerpt, "excerpt-4");

  ServiceTelemetry disabled(/*slow_log_capacity=*/0);
  disabled.Record(MakeRequest(1, CacheClass::kWarmBind, 1000));
  EXPECT_TRUE(disabled.Snapshot().slow_queries.empty());
}

TEST(ServiceTelemetryTest, ToJsonParsesAndCoversEverySection) {
  ServiceTelemetry telemetry(/*slow_log_capacity=*/2);
  telemetry.Record(MakeRequest(7, CacheClass::kColdCompile, 123456));
  const std::string json = telemetry.Snapshot().ToJson();
  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << json;
  const obs::JsonValue* stats = doc->Find("service_stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->Find("requests")->AsUint(), 1u);
  const obs::JsonValue* by_class = stats->Find("by_class");
  ASSERT_NE(by_class, nullptr);
  EXPECT_EQ(by_class->Find("cold_compile")->AsUint(), 1u);
  const obs::JsonValue* stages = stats->Find("stages");
  ASSERT_NE(stages, nullptr);
  for (const char* stage :
       {"total", "cache_lookup", "compile", "bind", "estimate"}) {
    ASSERT_NE(stages->Find(stage), nullptr) << stage;
    EXPECT_NE(stages->Find(stage)->Find("p95_ns"), nullptr) << stage;
  }
  const obs::JsonValue* slow = stats->Find("slow_queries");
  ASSERT_NE(slow, nullptr);
  ASSERT_EQ(slow->Items().size(), 1u);
  EXPECT_EQ(slow->Items()[0].Find("request_id")->AsUint(), 7u);
}

TEST(ServiceTelemetryTest, ResetClearsAggregatesAndSlowFloor) {
  ServiceTelemetry telemetry(/*slow_log_capacity=*/2);
  telemetry.Record(MakeRequest(1, CacheClass::kWarmBind, 900));
  telemetry.Record(MakeRequest(2, CacheClass::kWarmBind, 800));
  // Log full: the admission floor is now 800, and 700 is rejected fast-path.
  telemetry.Record(MakeRequest(3, CacheClass::kWarmBind, 700));
  ASSERT_EQ(telemetry.Snapshot().slow_queries.size(), 2u);

  telemetry.Reset();
  const ServiceStats cleared = telemetry.Snapshot();
  EXPECT_EQ(cleared.requests, 0u);
  EXPECT_EQ(cleared.ok, 0u);
  EXPECT_EQ(cleared.by_class[static_cast<size_t>(CacheClass::kWarmBind)], 0u);
  const ServiceStats::StageStats* total = cleared.FindStage("total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count, 0u);
  EXPECT_EQ(total->sum_ns, 0u);
  EXPECT_TRUE(cleared.slow_queries.empty());

  // The floor regression: a post-reset request far below the PRE-reset
  // floor (100 < 800) must be admitted to the now-empty log. A floor that
  // survived the reset would fast-path-reject everything slower history
  // already beat, leaving the log empty forever.
  telemetry.Record(MakeRequest(4, CacheClass::kWarmBind, 100));
  const ServiceStats after = telemetry.Snapshot();
  ASSERT_EQ(after.slow_queries.size(), 1u);
  EXPECT_EQ(after.slow_queries[0].request_id, 4u);
  EXPECT_EQ(after.requests, 1u);
}

TEST(ServiceTelemetryTest, ToJsonEmitsNullQuantilesForEmptyStages) {
  ServiceTelemetry telemetry(/*slow_log_capacity=*/2);
  // This request never ran the compile stage (compile_ns == 0 in
  // MakeRequest), so "compile" has count 0 — its quantiles are unknown,
  // not zero-nanosecond measurements.
  telemetry.Record(MakeRequest(1, CacheClass::kAnswerMemo, 5000));
  const std::string json = telemetry.Snapshot().ToJson();
  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << json;
  const obs::JsonValue* stages = doc->Find("service_stats")->Find("stages");
  ASSERT_NE(stages, nullptr);

  const obs::JsonValue* compile = stages->Find("compile");
  ASSERT_NE(compile, nullptr);
  EXPECT_EQ(compile->Find("count")->AsUint(), 0u);
  for (const char* q : {"p50_ns", "p95_ns", "p99_ns"}) {
    const obs::JsonValue* v = compile->Find(q);
    ASSERT_NE(v, nullptr) << q;
    EXPECT_EQ(v->kind(), obs::JsonValue::Kind::kNull) << q;
  }
  // A stage that DID run keeps numeric quantiles.
  const obs::JsonValue* total = stages->Find("total");
  ASSERT_NE(total, nullptr);
  EXPECT_TRUE(total->Find("p50_ns")->is_number());
}

// --- Workload records: JSONL round-trip ----------------------------------

TEST(WorkloadRecordTest, FormatParseRoundTripIsExact) {
  WorkloadRecord record;
  record.request_id = 42;
  record.target = "query";
  record.query = "Follows(x,y), Likes(y,z)";
  record.labelling_hash = 0xdeadbeefcafef00dull;  // needs all 64 bits
  record.config_hash = 0xffffffffffffffffull;
  record.method = "fpras";
  record.kernels = "fast";
  record.epsilon = 0.20000000000000001;  // not representable in few digits
  record.seed = 0x3c6ef372fe94f854ull;
  record.deadline_ms = 250;
  record.status = "ok";
  record.probability = 0.93413926825981919;

  const std::string line = FormatWorkloadRecord(record);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto back = ParseWorkloadRecord(line);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->request_id, record.request_id);
  EXPECT_EQ(back->target, record.target);
  EXPECT_EQ(back->query, record.query);
  // 64-bit values travel as hex strings, so they are exact beyond 2^53.
  EXPECT_EQ(back->labelling_hash, record.labelling_hash);
  EXPECT_EQ(back->config_hash, record.config_hash);
  EXPECT_EQ(back->seed, record.seed);
  EXPECT_EQ(back->method, record.method);
  EXPECT_EQ(back->kernels, record.kernels);
  EXPECT_EQ(back->deadline_ms, record.deadline_ms);
  EXPECT_EQ(back->status, record.status);
  // Doubles are written with max_digits10: bit-exact round-trip.
  EXPECT_EQ(std::memcmp(&back->epsilon, &record.epsilon, sizeof(double)), 0);
  EXPECT_EQ(
      std::memcmp(&back->probability, &record.probability, sizeof(double)),
      0);

  EXPECT_FALSE(ParseWorkloadRecord("not json").ok());
  EXPECT_FALSE(ParseWorkloadRecord("[1,2,3]").ok());

  // Pre-kernel-mode captures (no "kernels" key) load as the exact tier.
  auto legacy = ParseWorkloadRecord(R"({"request_id":1,"status":"ok"})");
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy->kernels, "exact");
}

TEST(WorkloadRecordTest, LoadWorkloadFileSkipsBlanksAndNumbersErrors) {
  const std::string path = "telemetry_test_load.jsonl";
  {
    std::ofstream out(path);
    WorkloadRecord r;
    r.request_id = 1;
    out << FormatWorkloadRecord(r) << "\n\n";
    r.request_id = 2;
    out << FormatWorkloadRecord(r) << "\n";
  }
  auto records = LoadWorkloadFile(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].request_id, 1u);
  EXPECT_EQ((*records)[1].request_id, 2u);

  {
    std::ofstream out(path, std::ios::app);
    out << "{broken\n";
  }
  auto bad = LoadWorkloadFile(path);
  ASSERT_FALSE(bad.ok());
  // The error names the offending line (path:lineno: message).
  EXPECT_NE(bad.status().ToString().find(path + ":4:"), std::string::npos)
      << bad.status().ToString();
  std::remove(path.c_str());

  EXPECT_FALSE(LoadWorkloadFile("no_such_file.jsonl").ok());
}

TEST(WorkloadRecordTest, TruncatedTrailingLineIsATypedErrorNamingTheLine) {
  // A capture cut mid-write (process killed, disk full) ends in a prefix of
  // a record. Loading must fail with a line-numbered error, not silently
  // drop the tail or crash the replay.
  const std::string path = "telemetry_test_truncated.jsonl";
  {
    std::ofstream out(path);
    WorkloadRecord r;
    r.request_id = 1;
    out << FormatWorkloadRecord(r) << "\n";
    r.request_id = 2;
    const std::string full = FormatWorkloadRecord(r);
    out << full.substr(0, full.size() / 2);  // no closing brace, no newline
  }
  auto truncated = LoadWorkloadFile(path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(truncated.status().ToString().find(path + ":2:"),
            std::string::npos)
      << truncated.status().ToString();
  std::remove(path.c_str());

  // Same for non-JSON garbage appended after valid records.
  const std::string garbage_path = "telemetry_test_garbage.jsonl";
  {
    std::ofstream out(garbage_path);
    WorkloadRecord r;
    r.request_id = 1;
    out << FormatWorkloadRecord(r) << "\n"
        << "\x01\xffGARBAGE not json at all\n";
  }
  auto garbage = LoadWorkloadFile(garbage_path);
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(garbage.status().ToString().find(garbage_path + ":2:"),
            std::string::npos)
      << garbage.status().ToString();
  std::remove(garbage_path.c_str());
}

TEST(WorkloadRecordTest, UpdateSpecRejectsSignsWhitespaceAndJunk) {
  // strtoull would accept all of these by wrapping or stopping early; the
  // strict parser rejects them with a typed InvalidArgument instead of
  // applying a garbage delta.
  for (const char* spec :
       {"0=-1/2", "0=+1/2", "-1=1/2", "0=1/-2", "0= 1/2", "0=1/ 2",
        "0=1a/2", "0=1/2x", "0x3=1/2", "0=18446744073709551616/2"}) {
    auto delta = ParseLabelDeltaSpec(spec);
    ASSERT_FALSE(delta.ok()) << spec;
    EXPECT_EQ(delta.status().code(), StatusCode::kInvalidArgument) << spec;
  }
  // The straight form still parses.
  auto good = ParseLabelDeltaSpec("3=1/2,7=2/3");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ASSERT_EQ(good->facts.size(), 2u);
  EXPECT_EQ(good->facts[0], 3u);
  EXPECT_EQ(good->new_probs[1].num, 2u);
  EXPECT_EQ(good->new_probs[1].den, 3u);
}

// --- Fingerprints ----------------------------------------------------------

struct Fixture {
  QueryInstance qi;
  ProbabilisticDatabase pdb;
};

Fixture MakeFixture(uint64_t prob_seed) {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 1.0;
  opt.seed = 7;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = prob_seed;
  return {std::move(qi), AttachProbabilities(std::move(db), pm)};
}

PqeEngine::Options TestOptions() {
  auto opts = PqeEngine::Options::Builder()
                  .Method(PqeMethod::kFpras)
                  .Epsilon(0.3)
                  .Seed(0xfeed)
                  .PoolSize(48)
                  .Repetitions(1)
                  .NumThreads(1)
                  .Build();
  EXPECT_TRUE(opts.ok()) << opts.status().ToString();
  return *opts;
}

TEST(WorkloadHashTest, LabellingHashSeesProbabilitiesNotFacts) {
  Fixture a = MakeFixture(100);
  Fixture a2 = MakeFixture(100);  // same facts, same labelling
  Fixture b = MakeFixture(200);   // same facts, different labelling
  EXPECT_EQ(HashLabelling(a.pdb), HashLabelling(a2.pdb));
  EXPECT_NE(HashLabelling(a.pdb), HashLabelling(b.pdb));
}

TEST(WorkloadHashTest, ConfigHashSeesSteeringFieldsOnly) {
  const PqeEngine::Options base = TestOptions();
  PqeEngine::Options widened = base;
  widened.max_width = base.max_width + 1;
  EXPECT_NE(HashEngineConfig(base), HashEngineConfig(widened));

  // Fields each record carries itself — and thread count, which never
  // changes answers — are excluded.
  PqeEngine::Options reseeded = base;
  reseeded.seed ^= 0x1234;
  reseeded.epsilon = 0.4;
  reseeded.num_threads = 8;
  EXPECT_EQ(HashEngineConfig(base), HashEngineConfig(reseeded));
}

// --- Capture through the service ------------------------------------------

TEST(CaptureTest, ServiceWritesOneParseableRecordPerRequest) {
  Fixture fx = MakeFixture(100);
  const std::string path = "telemetry_test_capture.jsonl";
  std::remove(path.c_str());

  PqeService::Options sopt;
  sopt.engine = TestOptions();
  sopt.num_threads = 1;
  sopt.capture_path = path;
  PqeService service(sopt);
  ASSERT_TRUE(service.capture_status().ok())
      << service.capture_status().ToString();

  EvalRequest r = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
  r.request_id = 9;
  const std::vector<EvalResponse> resp = service.EvaluateBatch({r});
  ASSERT_TRUE(resp[0].status.ok()) << resp[0].status.ToString();

  auto records = LoadWorkloadFile(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  const WorkloadRecord& rec = (*records)[0];
  EXPECT_EQ(rec.request_id, 9u);
  EXPECT_EQ(rec.target, "query");
  EXPECT_EQ(rec.status, "ok");
  EXPECT_EQ(rec.method, "fpras");
  EXPECT_EQ(rec.labelling_hash, HashLabelling(fx.pdb));
  EXPECT_EQ(rec.config_hash, HashEngineConfig(sopt.engine));
  // The capture records the EFFECTIVE seed (derived from the request id).
  EXPECT_EQ(rec.seed, Rng::DeriveSeed(sopt.engine.seed, 9));
  EXPECT_EQ(std::memcmp(&rec.probability, &resp[0].answer.probability,
                        sizeof(double)),
            0);
  // The query text parses back to the same query (what replay relies on).
  EXPECT_FALSE(rec.query.empty());
  std::remove(path.c_str());
}

TEST(CaptureTest, UnopenableCapturePathSurfacesAsStatusNotCrash) {
  PqeService::Options sopt;
  sopt.engine = TestOptions();
  sopt.capture_path = "no/such/dir/capture.jsonl";
  PqeService service(sopt);
  EXPECT_FALSE(service.capture_status().ok());
  // The service still serves.
  Fixture fx = MakeFixture(100);
  EvalRequest r = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
  EXPECT_TRUE(service.Evaluate(r).status.ok());
}

// --- Replay: the bit-identity oracle --------------------------------------

TEST(ReplayTest, ReplayedAnswersMatchBitForBit) {
  Fixture fx = MakeFixture(100);
  const std::string path = "telemetry_test_replay.jsonl";
  std::remove(path.c_str());

  PqeService::Options sopt;
  sopt.engine = TestOptions();
  sopt.num_threads = 1;
  sopt.capture_path = path;
  {
    PqeService service(sopt);
    std::vector<EvalRequest> reqs;
    for (uint64_t i = 1; i <= 4; ++i) {
      EvalRequest r = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
      r.request_id = i;
      if (i % 2 == 0) r.epsilon = 0.35;  // distinct estimator configs
      reqs.push_back(r);
    }
    const std::vector<EvalResponse> resp = service.EvaluateBatch(reqs);
    for (const EvalResponse& x : resp) ASSERT_TRUE(x.status.ok());
  }

  auto records = LoadWorkloadFile(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 4u);

  // A fresh service (no warm state): only determinism makes answers match.
  PqeService::Options replay_opts = sopt;
  replay_opts.capture_path.clear();
  PqeService fresh(replay_opts);
  auto report = ReplayWorkload(fresh, fx.pdb, *records);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->total, 4u);
  EXPECT_EQ(report->replayed, 4u);
  EXPECT_EQ(report->matched, 4u);
  EXPECT_EQ(report->mismatched, 0u);
  EXPECT_TRUE(report->Clean());

  // Tamper with one recorded probability: the oracle must notice.
  std::vector<WorkloadRecord> tampered = *records;
  tampered[2].probability += 1e-9;
  auto bad = ReplayWorkload(fresh, fx.pdb, tampered);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->mismatched, 1u);
  EXPECT_EQ(bad->matched, 3u);
  EXPECT_FALSE(bad->Clean());
  ASSERT_FALSE(bad->mismatch_details.empty());
  EXPECT_NE(bad->mismatch_details[0].find("request 3"), std::string::npos)
      << bad->mismatch_details[0];
  std::remove(path.c_str());
}

TEST(ReplayTest, DriftAndUnreplayableRecordsAreCountedNotCompared) {
  Fixture fx = MakeFixture(100);
  Fixture drifted = MakeFixture(200);  // same facts, different labelling

  WorkloadRecord ok_record;
  {
    // Capture one real request to get a faithful record.
    const std::string path = "telemetry_test_drift.jsonl";
    std::remove(path.c_str());
    PqeService::Options sopt;
    sopt.engine = TestOptions();
    sopt.num_threads = 1;
    sopt.capture_path = path;
    PqeService service(sopt);
    EvalRequest r = EvalRequest::ForQuery(fx.qi.query, fx.pdb);
    r.request_id = 1;
    ASSERT_TRUE(service.EvaluateBatch({r})[0].status.ok());
    auto records = LoadWorkloadFile(path);
    ASSERT_TRUE(records.ok());
    ok_record = (*records)[0];
    std::remove(path.c_str());
  }

  WorkloadRecord dead = ok_record;
  dead.request_id = 2;
  dead.status = "deadline_exceeded";
  WorkloadRecord union_rec = ok_record;
  union_rec.request_id = 3;
  union_rec.target = "union";
  WorkloadRecord config_drift = ok_record;
  config_drift.request_id = 4;
  config_drift.config_hash ^= 1;
  WorkloadRecord bad_query = ok_record;
  bad_query.request_id = 5;
  bad_query.query = "NoSuchRel(x,";

  PqeService::Options sopt;
  sopt.engine = TestOptions();
  sopt.num_threads = 1;
  PqeService service(sopt);

  // Replaying against a drifted labelling: nothing is compared.
  auto drift = ReplayWorkload(service, drifted.pdb, {ok_record});
  ASSERT_TRUE(drift.ok());
  EXPECT_EQ(drift->labelling_drift, 1u);
  EXPECT_EQ(drift->replayed, 0u);
  EXPECT_TRUE(drift->Clean());

  auto report = ReplayWorkload(
      service, fx.pdb, {ok_record, dead, union_rec, config_drift, bad_query});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total, 5u);
  EXPECT_EQ(report->replayed, 1u);  // only the clean "ok" query record
  EXPECT_EQ(report->matched, 1u);
  EXPECT_EQ(report->skipped_status, 1u);
  EXPECT_EQ(report->skipped_target, 1u);
  EXPECT_EQ(report->config_drift, 1u);
  EXPECT_EQ(report->parse_failures, 1u);
  EXPECT_FALSE(report->Clean());  // parse failures are never clean
  const std::string summary = report->Summary();
  EXPECT_NE(summary.find("5 records"), std::string::npos) << summary;
}

}  // namespace
}  // namespace serve
}  // namespace pqe
