// Unit tests for the automata module: NFA, labelled trees, NFTA (+λ),
// augmented NFTAs (Section 4.1) and NFTAs with multipliers (Section 5.1).

#include <gtest/gtest.h>

#include "automata/augmented_nfta.h"
#include "automata/multiplier_nfta.h"
#include "automata/nfa.h"
#include "automata/nfta.h"
#include "automata/tree.h"
#include "counting/exact.h"

namespace pqe {
namespace {

// --------------------------------------------------------------------- NFA

// (ab)* ending in b, as a 2-state NFA over {a=0, b=1}.
Nfa AlternatingNfa() {
  Nfa nfa;
  StateId s0 = nfa.AddState();
  StateId s1 = nfa.AddState();
  nfa.MarkInitial(s0);
  nfa.MarkAccepting(s1);
  nfa.AddTransition(s0, 0, s1);
  nfa.AddTransition(s1, 1, s0);
  return nfa;
}

TEST(NfaTest, AcceptsAndRejects) {
  Nfa nfa = AlternatingNfa();
  EXPECT_TRUE(nfa.Accepts({0}));
  EXPECT_FALSE(nfa.Accepts({1}));
  EXPECT_FALSE(nfa.Accepts({0, 1}));
  EXPECT_TRUE(nfa.Accepts({0, 1, 0}));
  EXPECT_FALSE(nfa.Accepts({}));
}

TEST(NfaTest, StatesAfterSubsetSimulation) {
  Nfa nfa = AlternatingNfa();
  auto states = nfa.StatesAfter({0});
  EXPECT_FALSE(states[0]);
  EXPECT_TRUE(states[1]);
}

TEST(NfaTest, TrimRemovesUselessStates) {
  Nfa nfa = AlternatingNfa();
  StateId dead = nfa.AddState();          // unreachable
  nfa.AddTransition(dead, 0, dead);
  StateId trap = nfa.AddState();          // reachable, not co-reachable
  nfa.AddTransition(0, 1, trap);
  EXPECT_EQ(nfa.NumStates(), 4u);
  nfa.Trim();
  EXPECT_EQ(nfa.NumStates(), 2u);
  EXPECT_TRUE(nfa.Accepts({0, 1, 0}));
}

TEST(NfaTest, MultipleInitialStates) {
  Nfa nfa;
  StateId a = nfa.AddState();
  StateId b = nfa.AddState();
  StateId f = nfa.AddState();
  nfa.MarkInitial(a);
  nfa.MarkInitial(b);
  nfa.MarkAccepting(f);
  nfa.AddTransition(a, 0, f);
  nfa.AddTransition(b, 1, f);
  EXPECT_TRUE(nfa.Accepts({0}));
  EXPECT_TRUE(nfa.Accepts({1}));
  EXPECT_EQ(nfa.initial_states().size(), 2u);
}

// ------------------------------------------------------------ LabeledTree

TEST(LabeledTreeTest, BuildAndSerialize) {
  LabeledTree t(5);
  uint32_t c1 = t.AddChild(t.root(), 1);
  t.AddChild(t.root(), 2);
  t.AddChild(c1, 3);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.Serialize(), "(5 (1 (3)) (2))");
}

TEST(LabeledTreeTest, GraftCopiesSubtree) {
  LabeledTree sub(7);
  sub.AddChild(sub.root(), 8);
  LabeledTree t(1);
  t.GraftChild(t.root(), sub);
  t.GraftChild(t.root(), sub);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.Serialize(), "(1 (7 (8)) (7 (8)))");
}

TEST(LabeledTreeTest, EqualityIsStructural) {
  LabeledTree a(1);
  a.AddChild(a.root(), 2);
  LabeledTree b(1);
  b.AddChild(b.root(), 2);
  LabeledTree c(1);
  c.AddChild(c.root(), 3);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

// ------------------------------------------------------------------- NFTA

// Accepts trees shaped f(a, b) with f=0, a=1, b=2.
Nfta TinyNfta() {
  Nfta t;
  StateId q0 = t.AddState();
  StateId qa = t.AddState();
  StateId qb = t.AddState();
  t.SetInitialState(q0);
  t.AddTransition(q0, 0, {qa, qb});
  t.AddTransition(qa, 1, {});
  t.AddTransition(qb, 2, {});
  return t;
}

TEST(NftaTest, AcceptsExpectedTrees) {
  Nfta t = TinyNfta();
  LabeledTree good(0);
  good.AddChild(good.root(), 1);
  good.AddChild(good.root(), 2);
  EXPECT_TRUE(t.Accepts(good));

  LabeledTree swapped(0);
  swapped.AddChild(swapped.root(), 2);
  swapped.AddChild(swapped.root(), 1);
  EXPECT_FALSE(t.Accepts(swapped));

  LabeledTree leaf(1);
  EXPECT_FALSE(t.Accepts(leaf));
  EXPECT_TRUE(t.AcceptsFrom(1, leaf));
}

TEST(NftaTest, LambdaEliminationForestSplice) {
  // q0 --f--> (m); m --λ--> (qa qb): after elimination q0 --f--> (qa qb).
  Nfta t;
  StateId q0 = t.AddState();
  StateId m = t.AddState();
  StateId qa = t.AddState();
  StateId qb = t.AddState();
  t.SetInitialState(q0);
  t.AddTransition(q0, 0, {m});
  t.AddTransition(m, Nfta::kLambdaSymbol, {qa, qb});
  t.AddTransition(qa, 1, {});
  t.AddTransition(qb, 2, {});
  ASSERT_TRUE(t.EliminateLambda().ok());
  EXPECT_FALSE(t.HasLambdaTransitions());
  LabeledTree good(0);
  good.AddChild(good.root(), 1);
  good.AddChild(good.root(), 2);
  EXPECT_TRUE(t.Accepts(good));
}

TEST(NftaTest, LambdaEliminationEmptyForest) {
  // m expands to the empty forest: f's child list drops it.
  Nfta t;
  StateId q0 = t.AddState();
  StateId m = t.AddState();
  StateId qa = t.AddState();
  t.SetInitialState(q0);
  t.AddTransition(q0, 0, {qa, m});
  t.AddTransition(m, Nfta::kLambdaSymbol, {});
  t.AddTransition(qa, 1, {});
  ASSERT_TRUE(t.EliminateLambda().ok());
  LabeledTree good(0);
  good.AddChild(good.root(), 1);
  EXPECT_TRUE(t.Accepts(good));
}

TEST(NftaTest, LambdaEliminationInitialChain) {
  // s_init --λ--> r, r --a--> (): the initial state absorbs r's rule.
  Nfta t;
  StateId s = t.AddState();
  StateId r = t.AddState();
  t.SetInitialState(s);
  t.AddTransition(s, Nfta::kLambdaSymbol, {r});
  t.AddTransition(r, 0, {});
  ASSERT_TRUE(t.EliminateLambda().ok());
  LabeledTree leaf(0);
  EXPECT_TRUE(t.Accepts(leaf));
}

TEST(NftaTest, TrimRemovesNonProductive) {
  Nfta t = TinyNfta();
  StateId sink = t.AddState();  // no transitions: non-productive
  t.AddTransition(0, 0, {sink, sink});
  const size_t before = t.NumTransitions();
  t.Trim();
  EXPECT_LT(t.NumTransitions(), before);
  LabeledTree good(0);
  good.AddChild(good.root(), 1);
  good.AddChild(good.root(), 2);
  EXPECT_TRUE(t.Accepts(good));
}

// --------------------------------------------------------- Augmented NFTA

TEST(AugmentedNftaTest, StringAnnotationThreadsStates) {
  // One transition annotated "a b" (no ?): accepts the path a(b).
  AugmentedNfta aug;
  StateId s = aug.AddState();
  aug.SetInitialState(s);
  aug.AddTransition(s, {{0, false}, {1, false}}, {});
  auto nfta = aug.ToNfta();
  ASSERT_TRUE(nfta.ok());
  LabeledTree t(PositiveLiteral(0));
  t.AddChild(t.root(), PositiveLiteral(1));
  EXPECT_TRUE(nfta->Accepts(t));
  // Exactly one tree of size 2 accepted.
  EXPECT_EQ(ExactCountNftaTrees(*nfta, 2)->ToDecimalString(), "1");
}

TEST(AugmentedNftaTest, QuestionMarkDoublesChoices) {
  // "a? b?" accepts 4 trees of size 2 (each literal positive or negative).
  AugmentedNfta aug;
  StateId s = aug.AddState();
  aug.SetInitialState(s);
  aug.AddTransition(s, {{0, true}, {1, true}}, {});
  auto nfta = aug.ToNfta();
  ASSERT_TRUE(nfta.ok());
  EXPECT_EQ(ExactCountNftaTrees(*nfta, 2)->ToDecimalString(), "4");
  LabeledTree t(NegativeLiteral(0));
  t.AddChild(t.root(), NegativeLiteral(1));
  EXPECT_TRUE(nfta->Accepts(t));
}

TEST(AugmentedNftaTest, SizeMeasurePolynomial) {
  AugmentedNfta aug;
  StateId s = aug.AddState();
  aug.SetInitialState(s);
  aug.AddTransition(s, {{0, true}, {1, false}, {2, true}}, {});
  // Remark 1: translation is polynomial; here 3 symbols → <= 5 transitions.
  auto nfta = aug.ToNfta();
  ASSERT_TRUE(nfta.ok());
  EXPECT_LE(nfta->NumTransitions(), 5u);
  EXPECT_GT(aug.SizeMeasure(), 0u);
}

// -------------------------------------------------------- Multiplier NFTA

// A single leaf transition with multiplier n must accept exactly n trees
// (of the padded size).
TEST(MultiplierNftaTest, GadgetMultipliesExactly) {
  for (uint64_t n = 1; n <= 24; ++n) {
    MultiplierNfta m;
    StateId s = m.AddState();
    m.SetInitialState(s);
    m.EnsureAlphabetSize(1);
    ASSERT_TRUE(m.AddTransition(s, 0, n, {}).ok());
    auto nfta = m.ToNfta();
    ASSERT_TRUE(nfta.ok());
    const size_t size = 1 + MultiplierNfta::GadgetDepth(n);
    auto count = ExactCountNftaTrees(*nfta, size);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count->ToDecimalString(), std::to_string(n)) << "n=" << n;
  }
}

TEST(MultiplierNftaTest, PaddedWidthKeepsCount) {
  for (uint64_t n : {1ull, 2ull, 3ull, 5ull, 6ull}) {
    MultiplierNfta m;
    StateId s = m.AddState();
    m.SetInitialState(s);
    m.EnsureAlphabetSize(1);
    const uint64_t width = 6;  // padded well beyond the minimum
    ASSERT_TRUE(m.AddTransition(s, 0, n, {}, width).ok());
    auto nfta = m.ToNfta();
    ASSERT_TRUE(nfta.ok());
    auto count = ExactCountNftaTrees(*nfta, 1 + width);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count->ToDecimalString(), std::to_string(n)) << "n=" << n;
    // No trees at other sizes.
    EXPECT_EQ(ExactCountNftaTrees(*nfta, width)->ToDecimalString(), "0");
  }
}

TEST(MultiplierNftaTest, GadgetDepthIsLogarithmic) {
  EXPECT_EQ(MultiplierNfta::GadgetDepth(1), 0u);
  EXPECT_EQ(MultiplierNfta::GadgetDepth(2), 1u);
  EXPECT_EQ(MultiplierNfta::GadgetDepth(3), 2u);
  EXPECT_EQ(MultiplierNfta::GadgetDepth(5), 3u);
  EXPECT_EQ(MultiplierNfta::GadgetDepth(1025), 11u);
  EXPECT_EQ(MultiplierNfta::GadgetDepth(513), 10u);
}

TEST(MultiplierNftaTest, RejectsBadArguments) {
  MultiplierNfta m;
  StateId s = m.AddState();
  m.SetInitialState(s);
  EXPECT_FALSE(m.AddTransition(s, 0, 8, {}, 2).ok());      // width too small
  EXPECT_FALSE(m.AddTransition(s + 7, 0, 1, {}).ok());     // unknown state
  // Multiplier 0 (an impossible transition) is representable, but only by
  // the stable translation — the minimal ToNfta rejects it, since dropping
  // the transition is its minimal encoding.
  EXPECT_TRUE(m.AddTransition(s, 0, 0, {}).ok());
  EXPECT_FALSE(m.ToNfta().ok());
  StableNftaLayout layout;
  EXPECT_TRUE(m.ToNftaStable(&layout).ok());
}

TEST(MultiplierNftaTest, ComposesThroughChildren) {
  // root --f(n=3)--> (leaf with n=2): total trees = 6.
  MultiplierNfta m;
  StateId root = m.AddState();
  StateId leaf = m.AddState();
  m.SetInitialState(root);
  m.EnsureAlphabetSize(2);
  ASSERT_TRUE(m.AddTransition(root, 0, 3, {leaf}).ok());
  ASSERT_TRUE(m.AddTransition(leaf, 1, 2, {}).ok());
  auto nfta = m.ToNfta();
  ASSERT_TRUE(nfta.ok());
  const size_t size = 2 + MultiplierNfta::GadgetDepth(3) +
                      MultiplierNfta::GadgetDepth(2);
  EXPECT_EQ(ExactCountNftaTrees(*nfta, size)->ToDecimalString(), "6");
}

}  // namespace
}  // namespace pqe
