// Tests for the workload generators: determinism, shape guarantees, and
// argument validation.

#include <gtest/gtest.h>

#include "core/projection.h"
#include "cq/builders.h"
#include "eval/eval.h"
#include "workload/generators.h"

namespace pqe {
namespace {

TEST(LayeredGraphTest, DeterministicForSeed) {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 0.5;
  opt.seed = 42;
  auto a = MakeLayeredPathDatabase(qi, opt).MoveValue();
  auto b = MakeLayeredPathDatabase(qi, opt).MoveValue();
  EXPECT_EQ(a.NumFacts(), b.NumFacts());
  opt.seed = 43;
  auto c = MakeLayeredPathDatabase(qi, opt).MoveValue();
  // Different seed very likely gives a different instance.
  EXPECT_TRUE(a.NumFacts() != c.NumFacts() || a.NumFacts() == 9u * 3u);
}

TEST(LayeredGraphTest, EnsurePathKeepsQuerySatisfiable) {
  auto qi = MakePathQuery(4).MoveValue();
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    LayeredGraphOptions opt;
    opt.width = 2;
    opt.density = 0.05;  // very sparse: without the spine, likely empty
    opt.seed = seed;
    opt.ensure_path = true;
    auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
    EXPECT_TRUE(Satisfies(db, qi.query).value()) << "seed=" << seed;
  }
}

TEST(LayeredGraphTest, DensityOneIsComplete) {
  auto qi = MakePathQuery(2).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 1.0;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  EXPECT_EQ(db.NumFacts(), 2u * 3u * 3u);
}

TEST(LayeredGraphTest, ValidatesArguments) {
  auto star = MakeStarQuery(2).MoveValue();
  LayeredGraphOptions opt;
  EXPECT_FALSE(MakeLayeredPathDatabase(star, opt).ok());  // not a path query
  auto qi = MakePathQuery(2).MoveValue();
  opt.width = 0;
  EXPECT_FALSE(MakeLayeredPathDatabase(qi, opt).ok());
}

TEST(RandomDatabaseTest, RespectsFactBudget) {
  auto qi = MakePathQuery(2).MoveValue();
  RandomDatabaseOptions opt;
  opt.domain_size = 4;
  opt.facts_per_relation = 6;
  opt.seed = 5;
  auto db = MakeRandomDatabase(qi.schema, opt).MoveValue();
  // Duplicates collapse, so <= 6 per relation.
  for (RelationId r = 0; r < qi.schema.NumRelations(); ++r) {
    EXPECT_LE(db.FactsOf(r).size(), 6u);
  }
  EXPECT_FALSE(
      MakeRandomDatabase(qi.schema, RandomDatabaseOptions{0, 3, 1}).ok());
}

TEST(StarDatabaseTest, EveryHubUsablePerRelation) {
  auto star = MakeStarQuery(3).MoveValue();
  StarDataOptions opt;
  opt.hubs = 3;
  opt.spokes_per_hub = 2;
  opt.density = 0.01;  // forces the keep-usable fallback
  opt.seed = 9;
  auto db = MakeStarDatabase(star, opt).MoveValue();
  for (const Atom& atom : star.query.atoms()) {
    EXPECT_GE(db.FactsOf(atom.relation).size(), opt.hubs);
  }
}

TEST(AttachProbabilitiesTest, ModelsBehaveAsDocumented) {
  auto qi = MakePathQuery(1).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R1", {"c", "d"}).ok());

  ProbabilityModel uniform;
  uniform.kind = ProbabilityModel::Kind::kUniformHalf;
  auto updb = AttachProbabilities(db, uniform);
  EXPECT_TRUE(updb.probability(0) == Probability::Half());

  ProbabilityModel fixed;
  fixed.kind = ProbabilityModel::Kind::kFixed;
  fixed.fixed = Probability{2, 7};
  auto fpdb = AttachProbabilities(db, fixed);
  EXPECT_TRUE(fpdb.probability(1) == (Probability{2, 7}));

  ProbabilityModel random;
  random.kind = ProbabilityModel::Kind::kRandomRational;
  random.max_denominator = 6;
  random.seed = 3;
  auto rpdb = AttachProbabilities(db, random);
  for (FactId f = 0; f < rpdb.NumFacts(); ++f) {
    const Probability p = rpdb.probability(f);
    EXPECT_GE(p.den, 2u);
    EXPECT_LE(p.den, 6u);
    EXPECT_GE(p.num, 1u);
    EXPECT_LT(p.num, p.den);  // never 0 or 1 under this model
  }
}

TEST(SnowflakeDatabaseTest, GeneratesSatisfiableInstances) {
  auto flake = MakeSnowflakeQuery(2, 2).MoveValue();
  SnowflakeDataOptions opt;
  opt.hubs = 2;
  opt.fanout = 2;
  opt.density = 0.5;
  opt.seed = 3;
  auto db = MakeSnowflakeDatabase(flake, 2, 2, opt).MoveValue();
  EXPECT_GT(db.NumFacts(), 0u);
  EXPECT_TRUE(Satisfies(db, flake.query).value());
  EXPECT_FALSE(
      MakeSnowflakeDatabase(flake, 2, 2, SnowflakeDataOptions{0, 1, 0.5, 1})
          .ok());
}

// ----------------------------------------------------------- projection --

TEST(ProjectionTest, DropsForeignRelationsAndKeepsOrder) {
  auto qi = MakePathQuery(2).MoveValue();
  Schema schema = qi.schema;
  ASSERT_TRUE(schema.AddRelation("Noise", 1).ok());
  Database db(schema);
  ASSERT_TRUE(db.AddFactByName("Noise", {"z1"}).ok());
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("Noise", {"z2"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "c"}).ok());
  auto proj = ProjectDatabase(db, qi.query).MoveValue();
  EXPECT_EQ(proj.db.NumFacts(), 2u);
  EXPECT_EQ(proj.dropped_facts, 2u);
  ASSERT_EQ(proj.original_fact.size(), 2u);
  EXPECT_EQ(proj.original_fact[0], 1u);
  EXPECT_EQ(proj.original_fact[1], 3u);
  EXPECT_EQ(proj.db.FactToString(0), "R1(a,b)");
}

TEST(ProjectionTest, CarriesProbabilities) {
  auto qi = MakePathQuery(1).MoveValue();
  Schema schema = qi.schema;
  ASSERT_TRUE(schema.AddRelation("Noise", 1).ok());
  Database db(schema);
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  ASSERT_TRUE(pdb.AddFact("Noise", {"z"}, Probability{1, 9}).ok());
  ASSERT_TRUE(pdb.AddFact("R1", {"a", "b"}, Probability{3, 7}).ok());
  auto proj = ProjectProbabilisticDatabase(pdb, qi.query).MoveValue();
  EXPECT_EQ(proj.pdb.NumFacts(), 1u);
  EXPECT_TRUE(proj.pdb.probability(0) == (Probability{3, 7}));
  EXPECT_EQ(proj.dropped_facts, 1u);
}

TEST(ProjectionTest, RejectsForeignQueryRelations) {
  auto qi = MakePathQuery(3).MoveValue();
  auto small = MakePathQuery(2).MoveValue();
  Database db(small.schema);  // schema without R3
  EXPECT_FALSE(ProjectDatabase(db, qi.query).ok());
}

}  // namespace
}  // namespace pqe
