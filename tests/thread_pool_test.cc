// Tests for the fork/join worker pool behind the parallel sampling layers:
// exactly-once task execution, caller participation, exception propagation,
// batch reuse, and the thread-count/flag resolution helpers.

#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pqe {
namespace {

// Saves and restores PQE_THREADS so tests that poke the environment do not
// leak into each other (ConsumeThreadsFlag exports the variable on purpose).
class ScopedThreadsEnv {
 public:
  ScopedThreadsEnv() {
    const char* v = std::getenv("PQE_THREADS");
    had_ = v != nullptr;
    if (had_) saved_ = v;
    unsetenv("PQE_THREADS");
  }
  ~ScopedThreadsEnv() {
    if (had_) {
      setenv("PQE_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("PQE_THREADS");
    }
  }

 private:
  bool had_ = false;
  std::string saved_;
};

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kTasks = 257;
  std::vector<std::atomic<int>> runs(kTasks);
  pool.RunBatch(kTasks, /*max_parallelism=*/4, [&](size_t i) {
    runs[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineInOrder) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  std::vector<size_t> order;
  pool.RunBatch(5, /*max_parallelism=*/8, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), std::this_thread::get_id());
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, MaxParallelismOneStaysOnCallerThread) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.RunBatch(4, /*max_parallelism=*/1, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  for (int batch = 0; batch < 20; ++batch) {
    pool.RunBatch(16, /*max_parallelism=*/3, [&](size_t i) {
      total.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 20u * (16u * 15u / 2u));
}

TEST(ThreadPoolTest, RethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<size_t> started{0};
  EXPECT_THROW(
      pool.RunBatch(1000, /*max_parallelism=*/3,
                    [&](size_t i) {
                      started.fetch_add(1, std::memory_order_relaxed);
                      if (i == 0) throw std::runtime_error("task 0 failed");
                    }),
      std::runtime_error);
  // Unstarted tasks are skipped once the exception lands (in-flight tasks
  // may still finish, so "started" need not be exactly 1 — just not 1000).
  EXPECT_LT(started.load(), 1000u);
  // The pool stays usable after an error.
  std::atomic<size_t> ok{0};
  pool.RunBatch(8, 3, [&](size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8u);
}

TEST(ThreadPoolTest, SharedPoolExercisesRealThreadsEvenOnSmallMachines) {
  // Sized max(hardware_concurrency, 8) - 1 so determinism and TSan tests
  // run actual cross-thread interleavings regardless of the host's cores.
  EXPECT_GE(ThreadPool::Shared().num_workers(), 7u);
}

TEST(ThreadPoolTest, ResolveNumThreadsPrefersExplicitConfig) {
  ScopedThreadsEnv guard;
  EXPECT_EQ(ThreadPool::ResolveNumThreads(5), 5u);
  setenv("PQE_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::ResolveNumThreads(5), 5u);  // config still wins
  EXPECT_EQ(ThreadPool::ResolveNumThreads(0), 3u);  // env fallback
}

TEST(ThreadPoolTest, ResolveNumThreadsDefaultsToSerial) {
  ScopedThreadsEnv guard;
  EXPECT_EQ(ThreadPool::ResolveNumThreads(0), 1u);
  setenv("PQE_THREADS", "garbage", 1);
  EXPECT_EQ(ThreadPool::ResolveNumThreads(0), 1u);
  setenv("PQE_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::ResolveNumThreads(0), 1u);
}

TEST(ParallelForTest, CoversAllIndicesAtEveryThreadCount) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    constexpr size_t kTasks = 100;
    std::vector<std::atomic<int>> runs(kTasks);
    ParallelFor(threads, kTasks, [&](size_t i) {
      runs[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(runs[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ConsumeThreadsFlagTest, StripsFlagAndExportsEnv) {
  ScopedThreadsEnv guard;
  std::string a0 = "prog", a1 = "--threads=6", a2 = "--other";
  char* argv[] = {a0.data(), a1.data(), a2.data()};
  int argc = 3;
  EXPECT_EQ(ConsumeThreadsFlag(&argc, argv), 6u);
  EXPECT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--other");
  const char* env = std::getenv("PQE_THREADS");
  ASSERT_NE(env, nullptr);
  EXPECT_STREQ(env, "6");
}

TEST(ConsumeThreadsFlagTest, LeavesMalformedValuesAlone) {
  ScopedThreadsEnv guard;
  std::string a0 = "prog", a1 = "--threads=zero";
  char* argv[] = {a0.data(), a1.data()};
  int argc = 2;
  EXPECT_EQ(ConsumeThreadsFlag(&argc, argv), 0u);
  EXPECT_EQ(argc, 2);  // not consumed
  EXPECT_EQ(std::getenv("PQE_THREADS"), nullptr);
}

}  // namespace
}  // namespace pqe
