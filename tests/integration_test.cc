// Cross-module integration sweeps: every evaluation strategy in the library
// is run against randomized instances and checked for mutual agreement —
// the library-level analogue of the paper's correctness claims.

#include <gtest/gtest.h>

#include "core/pqe.h"
#include "core/ur_construction.h"
#include "cq/builders.h"
#include "eval/eval.h"
#include "lineage/karp_luby.h"
#include "lineage/lineage.h"
#include "safeplan/safe_plan.h"
#include "util/rng.h"
#include "workload/generators.h"

namespace pqe {
namespace {

// One random instance of a random family; all exact methods must agree bit
// for bit, and both FPRAS methods must land within a generous band.
class FullPipelineSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FullPipelineSweep, AllStrategiesAgree) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  QueryInstance qi = [&]() -> QueryInstance {
    switch (rng.NextBounded(4)) {
      case 0:
        return MakePathQuery(2 + static_cast<uint32_t>(rng.NextBounded(2)))
            .MoveValue();
      case 1:
        return MakeStarQuery(2 + static_cast<uint32_t>(rng.NextBounded(2)))
            .MoveValue();
      case 2:
        return MakeH0Query().MoveValue();
      default:
        return MakeCycleQuery(3).MoveValue();
    }
  }();
  RandomDatabaseOptions ropt;
  ropt.domain_size = 3;
  ropt.facts_per_relation =
      static_cast<uint32_t>(2 + rng.NextBounded(2));
  ropt.seed = seed * 17 + 3;
  auto db = MakeRandomDatabase(qi.schema, ropt).MoveValue();
  if (db.NumFacts() > 13) GTEST_SKIP();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = seed * 11 + 5;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

  // Ground truth by enumeration.
  auto truth = ExactProbabilityByEnumeration(pdb, qi.query).MoveValue();
  const double t = truth.ToDouble();

  // Exact via the Theorem 1 automaton.
  auto via_automaton = PqeExactViaAutomaton(qi.query, pdb);
  ASSERT_TRUE(via_automaton.ok()) << via_automaton.status().ToString();
  EXPECT_EQ(via_automaton->Compare(truth), 0) << "seed=" << seed;

  // Exact via lineage + Shannon expansion.
  auto lineage = BuildLineage(qi.query, pdb.database()).MoveValue();
  auto via_lineage = ExactDnfProbability(lineage, pdb).MoveValue();
  EXPECT_EQ(via_lineage.Compare(truth), 0) << "seed=" << seed;

  // Exact via safe plan where applicable.
  if (IsSafeQuery(qi.query)) {
    EXPECT_NEAR(SafePlanProbability(qi.query, pdb).value(), t, 1e-9);
  }

  if (t > 0.0) {
    // FPRAS via the paper's pipeline.
    EstimatorConfig cfg;
    cfg.epsilon = 0.1;
    cfg.seed = seed * 31 + 7;
    auto est = PqeEstimate(qi.query, pdb, cfg).MoveValue();
    EXPECT_GT(est.probability, t / 1.4) << "seed=" << seed;
    EXPECT_LT(est.probability, t * 1.4) << "seed=" << seed;

    // FPRAS via Karp–Luby on the lineage.
    KarpLubyConfig klc;
    klc.epsilon = 0.05;
    klc.seed = seed * 13 + 11;
    auto kl = KarpLubyEstimate(lineage, pdb, klc).MoveValue();
    EXPECT_NEAR(kl.probability / t, 1.0, 0.25) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullPipelineSweep,
                         ::testing::Range<uint64_t>(1, 25));

// Uniform reliability consistency: enumeration == Prop. 1 automaton count ==
// 2^|D| · PQE at uniform 1/2 labels.
class UrConsistencySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UrConsistencySweep, UrAndPqeViewsCoincide) {
  const uint64_t seed = GetParam();
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 2;
  opt.density = 0.5 + 0.1 * (seed % 4);
  opt.seed = seed;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  if (db.NumFacts() > 13) GTEST_SKIP();
  auto ur = UniformReliabilityByEnumeration(db, qi.query).MoveValue();
  auto ur_automaton = UrExactViaAutomaton(qi.query, db).MoveValue();
  EXPECT_EQ(ur.ToDecimalString(), ur_automaton.ToDecimalString());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(db);
  auto p = PqeExactViaAutomaton(qi.query, pdb).MoveValue();
  BigRational expected(ur, BigUint::PowerOfTwo(db.NumFacts()));
  EXPECT_EQ(p.Compare(expected), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UrConsistencySweep,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace pqe
