// Tests for the Section 3 construction (Theorem 2): the path-query NFA and
// PathEstimate. The key property is the bijection |L_{|D'|}(M)| = UR(Q, D).

#include <gtest/gtest.h>

#include "core/path_pqe.h"
#include "counting/exact.h"
#include "cq/builders.h"
#include "eval/eval.h"
#include "pdb/probabilistic_database.h"
#include "workload/generators.h"

namespace pqe {
namespace {

TEST(PathNfaTest, RejectsNonPathQueries) {
  auto star = MakeStarQuery(3).MoveValue();
  Database db(star.schema);
  EXPECT_EQ(BuildPathQueryNfa(star.query, db).status().code(),
            StatusCode::kNotSupported);
  auto sj = MakeSelfJoinPathQuery(3).MoveValue();
  Database db2(sj.schema);
  EXPECT_EQ(BuildPathQueryNfa(sj.query, db2).status().code(),
            StatusCode::kNotSupported);
}

TEST(PathNfaTest, EmptyRelationYieldsEmptyLanguage) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  // R2 empty.
  auto m = BuildPathQueryNfa(qi.query, db);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(ExactCountNfaStrings(m->nfa, m->word_length)->ToDecimalString(),
            "0");
}

TEST(PathNfaTest, WordLengthEqualsProjectedFacts) {
  auto qi = MakePathQuery(2).MoveValue();
  Schema schema = qi.schema;  // add an extra relation outside the query
  ASSERT_TRUE(schema.AddRelation("Other", 1).ok());
  Database db(schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "c"}).ok());
  ASSERT_TRUE(db.AddFactByName("Other", {"z"}).ok());
  auto m = BuildPathQueryNfa(qi.query, db);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->word_length, 2u);
  EXPECT_EQ(m->dropped_facts, 1u);
  // UR doubles for the free extra fact.
  EXPECT_EQ(PathUniformReliabilityExact(qi.query, db)->ToDecimalString(),
            "2");
}

// Property: the NFA's exact string count equals brute-force UR, across
// random layered instances and query lengths.
struct PathCase {
  uint32_t length;
  uint32_t width;
  double density;
  uint64_t seed;
};

class PathBijection : public ::testing::TestWithParam<PathCase> {};

TEST_P(PathBijection, ExactCountMatchesEnumeration) {
  const PathCase& c = GetParam();
  auto qi = MakePathQuery(c.length).MoveValue();
  LayeredGraphOptions opt;
  opt.width = c.width;
  opt.density = c.density;
  opt.seed = c.seed;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  if (db.NumFacts() > 18) GTEST_SKIP() << "instance too large to enumerate";
  auto truth = UniformReliabilityByEnumeration(db, qi.query);
  ASSERT_TRUE(truth.ok());
  auto via_nfa = PathUniformReliabilityExact(qi.query, db);
  ASSERT_TRUE(via_nfa.ok());
  EXPECT_EQ(via_nfa->ToDecimalString(), truth->ToDecimalString())
      << "length=" << c.length << " width=" << c.width << " seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PathBijection,
    ::testing::Values(PathCase{1, 3, 0.8, 1}, PathCase{2, 2, 0.9, 2},
                      PathCase{2, 3, 0.5, 3}, PathCase{3, 2, 0.7, 4},
                      PathCase{3, 2, 0.4, 5}, PathCase{4, 2, 0.5, 6},
                      PathCase{4, 1, 1.0, 7}, PathCase{5, 1, 0.8, 8},
                      PathCase{3, 2, 0.9, 9}, PathCase{2, 4, 0.4, 10}));

// PathEstimate (the FPRAS) lands near the exact value.
TEST(PathEstimateTest, EstimateWithinBand) {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 2;
  opt.density = 0.8;
  opt.seed = 11;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  auto truth = PathUniformReliabilityExact(qi.query, db).MoveValue();
  EstimatorConfig cfg;
  cfg.epsilon = 0.1;
  cfg.seed = 5;
  auto est = PathEstimate(qi.query, db, cfg);
  ASSERT_TRUE(est.ok());
  const double t = truth.ToDouble();
  ASSERT_GT(t, 0.0);
  EXPECT_GT(est->ur.ToDouble(), t / 1.3);
  EXPECT_LT(est->ur.ToDouble(), t * 1.3);
  EXPECT_GT(est->nfa_states, 0u);
  EXPECT_GT(est->nfa_transitions, 0u);
}

// ---------------------------------------------------------------------------
// Theorem 1's string specialization for path queries (weighted automata).
// ---------------------------------------------------------------------------

TEST(PathPqeTest, ExactAgreesWithEnumeration) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "c"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "d"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"c", "d"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  ASSERT_TRUE(pdb.SetProbability(0, Probability{1, 3}).ok());
  ASSERT_TRUE(pdb.SetProbability(2, Probability{3, 4}).ok());
  ASSERT_TRUE(pdb.SetProbability(3, Probability{2, 7}).ok());
  auto truth = ExactProbabilityByEnumeration(pdb, qi.query).MoveValue();
  auto via_strings = PathPqeExact(qi.query, pdb).MoveValue();
  EXPECT_EQ(via_strings.Compare(truth), 0)
      << via_strings.ToString() << " vs " << truth.ToString();
}

TEST(PathPqeTest, SweepAgainstEnumeration) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto qi = MakePathQuery(3).MoveValue();
    LayeredGraphOptions opt;
    opt.width = 2;
    opt.density = 0.6;
    opt.seed = seed;
    auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
    if (db.NumFacts() > 13) continue;
    ProbabilityModel pm;
    pm.max_denominator = 8;
    pm.seed = seed + 40;
    ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
    auto truth = ExactProbabilityByEnumeration(pdb, qi.query).MoveValue();
    auto via_strings = PathPqeExact(qi.query, pdb).MoveValue();
    EXPECT_EQ(via_strings.Compare(truth), 0) << "seed=" << seed;
  }
}

TEST(PathPqeTest, EstimateWithinBand) {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 2;
  opt.density = 0.8;
  opt.seed = 3;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = 4;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  auto truth =
      ExactProbabilityByEnumeration(pdb, qi.query).MoveValue().ToDouble();
  ASSERT_GT(truth, 0.0);
  EstimatorConfig cfg;
  cfg.epsilon = 0.1;
  cfg.seed = 12;
  cfg.repetitions = 3;
  auto est = PathPqeEstimate(qi.query, pdb, cfg);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_GT(est->probability, truth / 1.35);
  EXPECT_LT(est->probability, truth * 1.35 + 1e-12);
  EXPECT_GT(est->nfa_states, 0u);
}

TEST(PathPqeTest, RejectsNonPathQueries) {
  auto star = MakeStarQuery(2).MoveValue();
  Database db(star.schema);
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  EstimatorConfig cfg;
  EXPECT_EQ(PathPqeEstimate(star.query, pdb, cfg).status().code(),
            StatusCode::kNotSupported);
}

// The automaton grows polynomially: states are bounded by Σ c_i² + 1.
TEST(PathNfaTest, StateCountPolynomialBound) {
  for (uint32_t len : {2u, 4u, 6u}) {
    auto qi = MakePathQuery(len).MoveValue();
    LayeredGraphOptions opt;
    opt.width = 3;
    opt.density = 0.6;
    opt.seed = len;
    auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
    auto m = BuildPathQueryNfa(qi.query, db).MoveValue();
    size_t bound = 1;
    for (uint32_t i = 0; i < len; ++i) {
      size_t c = db.FactsOf(qi.query.atom(i).relation).size();
      bound += c * c;
    }
    EXPECT_LE(m.nfa.NumStates(), bound);
  }
}

}  // namespace
}  // namespace pqe
