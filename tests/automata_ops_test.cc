// Tests for automata set operations, cross-validated with the exact
// counters: |L_n(A∪B)| = |L_n(A)| + |L_n(B)| − |L_n(A∩B)|, reversal
// preserves counts, products decide disjointness.

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "counting/exact.h"
#include "util/rng.h"

namespace pqe {
namespace {

Nfa RandomNfa(Rng* rng, size_t states, size_t alphabet, size_t transitions) {
  Nfa nfa;
  for (size_t i = 0; i < states; ++i) nfa.AddState();
  nfa.EnsureAlphabetSize(alphabet);
  nfa.MarkInitial(0);
  nfa.MarkAccepting(static_cast<StateId>(rng->NextBounded(states)));
  for (size_t i = 0; i < transitions; ++i) {
    nfa.AddTransition(static_cast<StateId>(rng->NextBounded(states)),
                      static_cast<SymbolId>(rng->NextBounded(alphabet)),
                      static_cast<StateId>(rng->NextBounded(states)));
  }
  return nfa;
}

class NfaAlgebraSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NfaAlgebraSweep, InclusionExclusionHolds) {
  Rng rng(GetParam());
  Nfa a = RandomNfa(&rng, 3 + rng.NextBounded(3), 2, 6 + rng.NextBounded(6));
  Nfa b = RandomNfa(&rng, 3 + rng.NextBounded(3), 2, 6 + rng.NextBounded(6));
  const size_t n = 3 + rng.NextBounded(4);
  auto ca = ExactCountNfaStrings(a, n).MoveValue();
  auto cb = ExactCountNfaStrings(b, n).MoveValue();
  auto cu = ExactCountNfaStrings(UnionNfa(a, b), n).MoveValue();
  auto ci = ExactCountNfaStrings(IntersectNfa(a, b), n).MoveValue();
  // |A| + |B| = |A ∪ B| + |A ∩ B|.
  EXPECT_EQ(ca.Add(cb).Compare(cu.Add(ci)), 0) << "seed=" << GetParam();
}

TEST_P(NfaAlgebraSweep, ReversalPreservesCounts) {
  Rng rng(GetParam() + 500);
  Nfa a = RandomNfa(&rng, 4, 2, 8);
  const size_t n = 4;
  auto forward = ExactCountNfaStrings(a, n).MoveValue();
  auto backward = ExactCountNfaStrings(ReverseNfa(a), n).MoveValue();
  EXPECT_EQ(forward.Compare(backward), 0) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NfaAlgebraSweep,
                         ::testing::Range<uint64_t>(1, 21));

TEST(NfaOpsTest, IntersectionOfDisjointLanguagesIsEmpty) {
  // L(a) = {0^n}, L(b) = {1^n}.
  Nfa zeros;
  StateId z = zeros.AddState();
  zeros.MarkInitial(z);
  zeros.MarkAccepting(z);
  zeros.AddTransition(z, 0, z);
  Nfa ones;
  StateId o = ones.AddState();
  ones.MarkInitial(o);
  ones.MarkAccepting(o);
  ones.AddTransition(o, 1, o);
  Nfa both = IntersectNfa(zeros, ones);
  EXPECT_EQ(ExactCountNfaStrings(both, 3)->ToDecimalString(), "0");
  // Length 0: the empty string is in both.
  EXPECT_EQ(ExactCountNfaStrings(both, 0)->ToDecimalString(), "1");
}

TEST(NftaOpsTest, UnionCountsMatchInclusionExclusion) {
  // A accepts the single leaf 'x'; B accepts leaves 'x' and 'y'.
  Nfta a;
  StateId qa = a.AddState();
  a.SetInitialState(qa);
  a.AddTransition(qa, 0, {});
  Nfta b;
  StateId qb = b.AddState();
  b.SetInitialState(qb);
  b.AddTransition(qb, 0, {});
  b.AddTransition(qb, 1, {});
  auto u = UnionNfta(a, b).MoveValue();
  // Union language at size 1: {x, y} → 2 trees, overlap counted once.
  EXPECT_EQ(ExactCountNftaTrees(u, 1)->ToDecimalString(), "2");
}

TEST(NftaOpsTest, UnionRejectsLambda) {
  Nfta a;
  StateId q = a.AddState();
  StateId r = a.AddState();
  a.SetInitialState(q);
  a.AddTransition(q, Nfta::kLambdaSymbol, {r});
  Nfta b;
  StateId qb = b.AddState();
  b.SetInitialState(qb);
  b.AddTransition(qb, 0, {});
  EXPECT_FALSE(UnionNfta(a, b).ok());
}

TEST(NftaOpsTest, UnionPreservesDeepTrees) {
  // A: unary chain x(x(x...)); B: leaf y. Union accepts both shapes.
  Nfta a;
  StateId q = a.AddState();
  a.SetInitialState(q);
  a.AddTransition(q, 0, {q});
  a.AddTransition(q, 0, {});
  Nfta b;
  StateId qb = b.AddState();
  b.SetInitialState(qb);
  b.AddTransition(qb, 1, {});
  auto u = UnionNfta(a, b).MoveValue();
  EXPECT_EQ(ExactCountNftaTrees(u, 3)->ToDecimalString(), "1");  // x-chain
  EXPECT_EQ(ExactCountNftaTrees(u, 1)->ToDecimalString(), "2");  // x or y
}

}  // namespace
}  // namespace pqe
