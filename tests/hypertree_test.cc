// Unit and property tests for the hypertree module: GYO join trees, the
// width-k decomposer, validation, completeness, re-rooting, binarization.

#include <string>

#include <gtest/gtest.h>

#include "cq/builders.h"
#include "cq/parser.h"
#include "hypertree/decomposition.h"
#include "util/rng.h"

namespace pqe {
namespace {

void ExpectValidComplete(const HypertreeDecomposition& hd,
                         const ConjunctiveQuery& q, bool generalized) {
  Status s = hd.Validate(q, generalized);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(hd.IsComplete(q));
}

TEST(GyoTest, PathQueriesHaveWidthOne) {
  for (uint32_t n : {1u, 2u, 5u, 9u}) {
    auto qi = MakePathQuery(n).MoveValue();
    auto hd = DecomposeAcyclic(qi.query);
    ASSERT_TRUE(hd.ok()) << "n=" << n;
    EXPECT_EQ(hd->Width(), 1u);
    ExpectValidComplete(*hd, qi.query, /*generalized=*/false);
  }
}

TEST(GyoTest, StarAndCaterpillarAreAcyclic) {
  auto star = MakeStarQuery(5).MoveValue();
  auto hd1 = DecomposeAcyclic(star.query);
  ASSERT_TRUE(hd1.ok());
  ExpectValidComplete(*hd1, star.query, false);

  auto cat = MakeCaterpillarQuery(4).MoveValue();
  auto hd2 = DecomposeAcyclic(cat.query);
  ASSERT_TRUE(hd2.ok());
  EXPECT_EQ(hd2->Width(), 1u);
  ExpectValidComplete(*hd2, cat.query, false);
}

TEST(GyoTest, CyclesAreRejected) {
  for (uint32_t n : {3u, 4u, 6u}) {
    auto qi = MakeCycleQuery(n).MoveValue();
    EXPECT_EQ(DecomposeAcyclic(qi.query).status().code(),
              StatusCode::kNotSupported)
        << "n=" << n;
  }
}

TEST(DecomposeTest, CyclesGetWidthTwo) {
  for (uint32_t n : {3u, 4u, 5u, 6u}) {
    auto qi = MakeCycleQuery(n).MoveValue();
    auto hd = Decompose(qi.query, 2);
    ASSERT_TRUE(hd.ok()) << "n=" << n << ": " << hd.status().ToString();
    EXPECT_LE(hd->Width(), 2u);
    ExpectValidComplete(*hd, qi.query, /*generalized=*/true);
  }
}

// Clique queries K_n (one binary atom per variable pair) have generalized
// hypertree width ceil(n/2): K4 fits width 2, K5 needs width 3.
Result<ConjunctiveQuery> MakeCliqueQuery(Schema* schema, uint32_t n) {
  uint32_t rel = 0;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      PQE_RETURN_IF_ERROR(
          schema->AddRelation("K" + std::to_string(rel++), 2).status());
    }
  }
  ConjunctiveQuery::Builder builder(schema);
  rel = 0;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      PQE_RETURN_IF_ERROR(builder.AddAtom(
          "K" + std::to_string(rel++),
          {"x" + std::to_string(i), "x" + std::to_string(j)}));
    }
  }
  return builder.Build();
}

TEST(DecomposeTest, CliqueWidths) {
  {
    Schema schema;
    auto k4 = MakeCliqueQuery(&schema, 4).MoveValue();
    EXPECT_EQ(Decompose(k4, 1).status().code(), StatusCode::kNotSupported);
    auto hd = Decompose(k4, 2);
    ASSERT_TRUE(hd.ok()) << hd.status().ToString();
    ExpectValidComplete(*hd, k4, /*generalized=*/true);
  }
  {
    Schema schema;
    auto k5 = MakeCliqueQuery(&schema, 5).MoveValue();
    EXPECT_EQ(Decompose(k5, 2).status().code(), StatusCode::kNotSupported);
    auto hd = Decompose(k5, 3);
    ASSERT_TRUE(hd.ok()) << hd.status().ToString();
    EXPECT_LE(hd->Width(), 3u);
    ExpectValidComplete(*hd, k5, /*generalized=*/true);
  }
}

TEST(DecomposeTest, WidthBudgetIsRespected) {
  auto qi = MakeCycleQuery(5).MoveValue();
  EXPECT_EQ(Decompose(qi.query, 1).status().code(),
            StatusCode::kNotSupported);
  EXPECT_FALSE(Decompose(qi.query, 0).ok());
}

TEST(DecomposeTest, HypertreeWidthUpTo) {
  EXPECT_EQ(HypertreeWidthUpTo(MakePathQuery(4)->query, 3).value(), 1u);
  EXPECT_EQ(HypertreeWidthUpTo(MakeCycleQuery(4)->query, 3).value(), 2u);
}

TEST(ValidateTest, DetectsBrokenConditions) {
  auto qi = MakePathQuery(2).MoveValue();
  const ConjunctiveQuery& q = qi.query;
  // Condition 1: an atom whose variables appear in no χ.
  {
    HypertreeDecomposition hd;
    hd.AddNode({q.atom(0).vars[0], q.atom(0).vars[1]}, {0}, -1);
    EXPECT_FALSE(hd.Validate(q).ok());
  }
  // Condition 2: variable occurrences form a disconnected set.
  {
    HypertreeDecomposition hd;
    // Chain p0 - p1 - p2 where x1 appears at p0 and p2 but not p1.
    uint32_t p0 = hd.AddNode({0, 1}, {0}, -1);
    uint32_t p1 = hd.AddNode({1, 2}, {1}, static_cast<int32_t>(p0));
    hd.AddNode({0, 1}, {0}, static_cast<int32_t>(p1));
    EXPECT_FALSE(hd.Validate(q).ok());
  }
  // Condition 3: χ not covered by vars(ξ).
  {
    HypertreeDecomposition hd;
    uint32_t p0 = hd.AddNode({0, 1, 2}, {0}, -1);
    hd.AddNode({1, 2}, {1}, static_cast<int32_t>(p0));
    EXPECT_FALSE(hd.Validate(q).ok());
  }
}

TEST(ValidateTest, Condition4DistinguishesGeneralized) {
  // Construct a decomposition violating only the special condition:
  // root ξ={R1} but χ drops a variable of R1 that reappears below.
  auto qi = MakePathQuery(2).MoveValue();
  const ConjunctiveQuery& q = qi.query;  // R1(x1,x2), R2(x2,x3)
  HypertreeDecomposition hd;
  // Root lists R2 in ξ but drops x3 from χ; x3 reappears in the child's χ:
  // vars(ξ(p0)) ∩ χ(T_p0) ∋ x3 ∉ χ(p0) — only the special condition fails.
  uint32_t p0 = hd.AddNode({0, 1}, {0, 1}, -1);
  hd.AddNode({1, 2}, {1}, static_cast<int32_t>(p0));
  Status generalized = hd.Validate(q, /*generalized=*/true);
  EXPECT_TRUE(generalized.ok()) << generalized.ToString();
  EXPECT_FALSE(hd.Validate(q, /*generalized=*/false).ok());
}

TEST(CompletenessTest, MakeCompleteAddsCoveringVertices) {
  // E(x,y), L(x): a single node covering E satisfies conditions 1-4 (L's
  // variable x sits inside χ) but L has no covering vertex.
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("E", 2).ok());
  ASSERT_TRUE(schema.AddRelation("L", 1).ok());
  auto q = ParseQuery(schema, "E(x,y), L(x)").MoveValue();
  HypertreeDecomposition hd;
  hd.AddNode({0, 1}, {0}, -1);
  ASSERT_TRUE(hd.Validate(q).ok());
  EXPECT_FALSE(hd.IsComplete(q));
  ASSERT_TRUE(hd.MakeComplete(q).ok());
  EXPECT_TRUE(hd.IsComplete(q));
  EXPECT_EQ(hd.NumNodes(), 2u);
  // The paper's transform attaches p_A as a child of a host with
  // vars(A) ⊆ χ(host); the result must still validate.
  Status s = hd.Validate(q);
  EXPECT_TRUE(s.ok()) << s.ToString();
  auto cover = hd.MinimalCoveringVertices(q);
  EXPECT_EQ(cover[0], 0);
  EXPECT_EQ(cover[1], 1);
}

TEST(CoveringTest, MinimalCoveringVerticesFollowDepthOrder) {
  auto qi = MakePathQuery(3).MoveValue();
  auto hd = Decompose(qi.query, 1).MoveValue();
  auto cover = hd.MinimalCoveringVertices(qi.query);
  ASSERT_EQ(cover.size(), 3u);
  for (int32_t c : cover) ASSERT_GE(c, 0);
  // Minimality: no shallower covering vertex exists.
  auto order = hd.DepthOrderedVertices();
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t p : order) {
      if (p == static_cast<uint32_t>(cover[a])) break;
      EXPECT_FALSE(hd.IsCoveringVertex(qi.query, p, a));
    }
  }
}

TEST(ReRootTest, PreservesGeneralizedValidity) {
  auto qi = MakePathQuery(4).MoveValue();
  auto hd = Decompose(qi.query, 1).MoveValue();
  const size_t nodes = hd.NumNodes();
  for (uint32_t p = 0; p < nodes; ++p) {
    HypertreeDecomposition copy = hd;
    copy.ReRoot(p);
    EXPECT_EQ(copy.root(), p);
    EXPECT_EQ(copy.NumNodes(), nodes);
    Status s = copy.Validate(qi.query, /*generalized=*/true);
    EXPECT_TRUE(s.ok()) << "reroot at " << p << ": " << s.ToString();
    EXPECT_TRUE(copy.IsComplete(qi.query));
    EXPECT_EQ(copy.node(p).depth, 0u);
  }
}

TEST(BinarizeTest, CapsFanoutAndPreservesValidity) {
  auto qi = MakeStarQuery(6).MoveValue();
  auto hd = Decompose(qi.query, 1).MoveValue();
  hd.Binarize();
  for (uint32_t p = 0; p < hd.NumNodes(); ++p) {
    EXPECT_LE(hd.node(p).children.size(), 2u);
  }
  Status s = hd.Validate(qi.query, /*generalized=*/true);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(hd.IsComplete(qi.query));
}

TEST(DepthOrderTest, NonDecreasingDepth) {
  auto qi = MakeCaterpillarQuery(4).MoveValue();
  auto hd = Decompose(qi.query, 1).MoveValue();
  auto order = hd.DepthOrderedVertices();
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LE(hd.node(order[i]).depth, hd.node(order[i + 1]).depth);
  }
}

// ---------------------------------------------------------------------------
// Property sweep: random acyclic-ish queries must decompose and validate.
// ---------------------------------------------------------------------------

class RandomQueryDecomposition : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomQueryDecomposition, DecomposeValidates) {
  Rng rng(GetParam());
  // Build a random connected query of mixed unary/binary atoms over a small
  // variable pool (a random "tree plus extra unary labels" shape).
  const uint32_t num_vars = 2 + static_cast<uint32_t>(rng.NextBounded(5));
  Schema schema;
  ConjunctiveQuery::Builder* builder = nullptr;
  std::vector<std::string> vars;
  for (uint32_t v = 0; v < num_vars; ++v) {
    vars.push_back("v" + std::to_string(v));
  }
  uint32_t rel = 0;
  std::vector<std::pair<std::string, std::vector<std::string>>> atoms;
  // Spanning chain keeps the query connected.
  for (uint32_t v = 0; v + 1 < num_vars; ++v) {
    atoms.push_back({"E" + std::to_string(rel++), {vars[v], vars[v + 1]}});
  }
  // Extra random atoms.
  const uint32_t extra = static_cast<uint32_t>(rng.NextBounded(3));
  for (uint32_t i = 0; i < extra; ++i) {
    if (rng.NextBernoulli(0.5)) {
      atoms.push_back({"L" + std::to_string(rel++),
                       {vars[rng.NextBounded(num_vars)]}});
    } else {
      atoms.push_back({"E" + std::to_string(rel++),
                       {vars[rng.NextBounded(num_vars)],
                        vars[rng.NextBounded(num_vars)]}});
    }
  }
  for (const auto& [name, args] : atoms) {
    ASSERT_TRUE(
        schema.AddRelation(name, static_cast<uint32_t>(args.size())).ok());
  }
  ConjunctiveQuery::Builder b(&schema);
  builder = &b;
  for (const auto& [name, args] : atoms) {
    ASSERT_TRUE(builder->AddAtom(name, args).ok());
  }
  auto q = builder->Build();
  ASSERT_TRUE(q.ok());

  auto hd = Decompose(*q, 3);
  ASSERT_TRUE(hd.ok()) << hd.status().ToString();
  ExpectValidComplete(*hd, *q, /*generalized=*/true);

  // The automaton pipeline's normalizations keep it valid too.
  hd->Binarize();
  ExpectValidComplete(*hd, *q, /*generalized=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryDecomposition,
                         ::testing::Range<uint64_t>(1, 33));

}  // namespace
}  // namespace pqe
