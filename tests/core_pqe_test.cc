// Tests for the Theorem 1 pipeline: multiplier attachment, the padded
// comparator sizes, and PqeEstimate / PqeExactViaAutomaton against the
// possible-world oracle.

#include <gtest/gtest.h>

#include "core/pqe.h"
#include "cq/builders.h"
#include "eval/eval.h"
#include "workload/generators.h"

namespace pqe {
namespace {

// A tiny fixed instance used by several tests.
ProbabilisticDatabase TinyPathPdb(const QueryInstance& qi) {
  Database db(qi.schema);
  EXPECT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  EXPECT_TRUE(db.AddFactByName("R1", {"a", "c"}).ok());
  EXPECT_TRUE(db.AddFactByName("R2", {"b", "d"}).ok());
  EXPECT_TRUE(db.AddFactByName("R2", {"c", "d"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  EXPECT_TRUE(pdb.SetProbability(0, Probability{1, 3}).ok());
  EXPECT_TRUE(pdb.SetProbability(1, Probability{2, 5}).ok());
  EXPECT_TRUE(pdb.SetProbability(2, Probability{3, 4}).ok());
  EXPECT_TRUE(pdb.SetProbability(3, Probability{1, 7}).ok());
  return pdb;
}

TEST(PqeAutomatonTest, ExactAgreesWithEnumeration) {
  auto qi = MakePathQuery(2).MoveValue();
  ProbabilisticDatabase pdb = TinyPathPdb(qi);
  auto truth = ExactProbabilityByEnumeration(pdb, qi.query).MoveValue();
  auto via_automaton = PqeExactViaAutomaton(qi.query, pdb).MoveValue();
  EXPECT_EQ(via_automaton.Compare(truth), 0)
      << via_automaton.ToString() << " vs " << truth.ToString();
}

TEST(PqeAutomatonTest, DenominatorIsProductOfFactDenominators) {
  auto qi = MakePathQuery(2).MoveValue();
  ProbabilisticDatabase pdb = TinyPathPdb(qi);
  UrConstructionOptions opts;
  auto automaton = BuildPqeAutomaton(qi.query, pdb, opts).MoveValue();
  EXPECT_EQ(automaton.denominator.ToDecimalString(),
            std::to_string(3 * 5 * 4 * 7));
}

TEST(PqeAutomatonTest, TreeSizeAddsPaddedGadgetWidths) {
  auto qi = MakePathQuery(2).MoveValue();
  ProbabilisticDatabase pdb = TinyPathPdb(qi);
  UrConstructionOptions opts;
  auto automaton = BuildPqeAutomaton(qi.query, pdb, opts).MoveValue();
  // Widths are denominator-sized (u(d_i) covers every multiplier 0..d_i, so
  // the shape is labelling-value independent for delta rebinds):
  // 1/3 → u(3) = 2; 2/5 → u(5) = 3; 3/4 → u(4) = 2; 1/7 → u(7) = 3.
  EXPECT_EQ(automaton.tree_size, 4u + 2u + 3u + 2u + 3u);
}

TEST(PqeAutomatonTest, ZeroAndOneProbabilitiesDropBranches) {
  auto qi = MakePathQuery(1).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R1", {"c", "d"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  ASSERT_TRUE(pdb.SetProbability(0, Probability{0, 1}).ok());  // never
  ASSERT_TRUE(pdb.SetProbability(1, Probability{1, 1}).ok());  // always
  // Query satisfied iff some R1 fact present: fact 1 always present → 1.
  auto p = PqeExactViaAutomaton(qi.query, pdb).MoveValue();
  EXPECT_EQ(p.Compare(BigRational::One()), 0);
  auto truth = ExactProbabilityByEnumeration(pdb, qi.query).MoveValue();
  EXPECT_EQ(p.Compare(truth), 0);
}

TEST(PqeAutomatonTest, UniformHalfReducesToUniformReliability) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "c"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "d"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(db);
  auto p = PqeExactViaAutomaton(qi.query, pdb).MoveValue();
  auto ur = UniformReliabilityByEnumeration(db, qi.query).MoveValue();
  // Pr = UR / 2^|D|.
  BigRational expected(ur, BigUint::PowerOfTwo(db.NumFacts()));
  EXPECT_EQ(p.Compare(expected), 0);
}

// ---------------------------------------------------------------------------
// Property sweep: exact automaton probability == enumeration across families
// and probability models.
// ---------------------------------------------------------------------------

struct PqeCase {
  int family;  // 0=path2, 1=star2, 2=h0, 3=cycle3
  uint64_t seed;
  uint64_t max_den;
};

class PqeAgreement : public ::testing::TestWithParam<PqeCase> {};

TEST_P(PqeAgreement, AutomatonMatchesEnumeration) {
  const PqeCase& c = GetParam();
  QueryInstance qi = c.family == 0   ? MakePathQuery(2).MoveValue()
                     : c.family == 1 ? MakeStarQuery(2).MoveValue()
                     : c.family == 2 ? MakeH0Query().MoveValue()
                                     : MakeCycleQuery(3).MoveValue();
  RandomDatabaseOptions ropt;
  ropt.domain_size = 3;
  ropt.facts_per_relation = 3;
  ropt.seed = c.seed;
  auto db = MakeRandomDatabase(qi.schema, ropt).MoveValue();
  if (db.NumFacts() > 12) GTEST_SKIP();
  ProbabilityModel pm;
  pm.max_denominator = c.max_den;
  pm.seed = c.seed * 13 + 1;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  auto truth = ExactProbabilityByEnumeration(pdb, qi.query);
  ASSERT_TRUE(truth.ok());
  auto via = PqeExactViaAutomaton(qi.query, pdb);
  ASSERT_TRUE(via.ok()) << via.status().ToString();
  EXPECT_EQ(via->Compare(*truth), 0)
      << "family=" << c.family << " seed=" << c.seed << ": "
      << via->ToString() << " vs " << truth->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PqeAgreement,
    ::testing::Values(PqeCase{0, 1, 4}, PqeCase{0, 2, 9}, PqeCase{0, 3, 2},
                      PqeCase{1, 4, 5}, PqeCase{1, 5, 16}, PqeCase{2, 6, 3},
                      PqeCase{2, 7, 8}, PqeCase{2, 8, 2}, PqeCase{3, 9, 4},
                      PqeCase{3, 10, 6}, PqeCase{0, 11, 32},
                      PqeCase{2, 12, 32}));

// The FPRAS estimate is close to the exact probability.
TEST(PqeEstimateTest, EstimateWithinBand) {
  auto qi = MakePathQuery(2).MoveValue();
  ProbabilisticDatabase pdb = TinyPathPdb(qi);
  auto truth = ExactProbabilityByEnumeration(pdb, qi.query).MoveValue();
  EstimatorConfig cfg;
  cfg.epsilon = 0.1;
  cfg.seed = 21;
  auto est = PqeEstimate(qi.query, pdb, cfg);
  ASSERT_TRUE(est.ok());
  const double t = truth.ToDouble();
  ASSERT_GT(t, 0.0);
  EXPECT_GT(est->probability, t / 1.3);
  EXPECT_LT(est->probability, t * 1.3);
  EXPECT_GT(est->nfta_states, 0u);
}

TEST(PqeEstimateTest, ImpossibleQueryGivesZero) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"x", "y"}).ok());  // no join
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  EstimatorConfig cfg;
  cfg.epsilon = 0.2;
  auto est = PqeEstimate(qi.query, pdb, cfg);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->tree_count.IsZero());
  EXPECT_EQ(est->probability, 0.0);
}

TEST(PqeEstimateTest, RejectsSelfJoins) {
  auto sj = MakeSelfJoinPathQuery(2).MoveValue();
  Database db(sj.schema);
  ASSERT_TRUE(db.AddFactByName("R", {"a", "b"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  EstimatorConfig cfg;
  EXPECT_EQ(PqeEstimate(sj.query, pdb, cfg).status().code(),
            StatusCode::kNotSupported);
}

}  // namespace
}  // namespace pqe
