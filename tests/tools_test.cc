// Tests for the CLI-facing utilities: the fact-file parser and the DOT
// exporters.

#include <gtest/gtest.h>

#include "automata/dot_export.h"
#include "cq/builders.h"
#include "hypertree/decomposition.h"
#include "tools/fact_file.h"

namespace pqe {
namespace {

TEST(FactFileTest, ParsesRationalsDecimalsAndDefaults) {
  auto pdb = ParseFactText(
      "# comment line\n"
      "Follows(ann, bob) 9/10\n"
      "Likes(bob, jazz) 0.75\n"
      "\n"
      "Edge(a, b)   # default probability\n");
  ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
  EXPECT_EQ(pdb->NumFacts(), 3u);
  EXPECT_TRUE(pdb->probability(0) == (Probability{9, 10}));
  EXPECT_TRUE(pdb->probability(1) == (Probability{75, 100}));
  EXPECT_TRUE(pdb->probability(2) == Probability::Half());
  EXPECT_EQ(pdb->schema().Arity(pdb->schema().FindRelation("Edge").value()),
            2u);
}

TEST(FactFileTest, ParsesBoundaryProbabilities) {
  auto pdb = ParseFactText(
      "A(x) 0\n"
      "B(x) 1\n"
      "C(x) 1.0\n"
      "D(x) 0.0\n");
  ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
  EXPECT_TRUE(pdb->probability(0) == Probability::Zero());
  EXPECT_TRUE(pdb->probability(1) == Probability::One());
  EXPECT_TRUE(pdb->probability(2) == Probability::One());
  EXPECT_TRUE(pdb->probability(3) == Probability::Zero());
}

TEST(FactFileTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseFactText("NoParens a b\n").ok());
  EXPECT_FALSE(ParseFactText("R(a,b\n").ok());
  EXPECT_FALSE(ParseFactText("R(a,) 0.5\n").ok());
  EXPECT_FALSE(ParseFactText("R(a,b) 5/4\n").ok());   // > 1
  EXPECT_FALSE(ParseFactText("R(a,b) 2.5\n").ok());   // > 1
  EXPECT_FALSE(ParseFactText("R(a,b) x/y\n").ok());
  // Arity conflict across lines.
  EXPECT_FALSE(ParseFactText("R(a,b) 0.5\nR(a) 0.5\n").ok());
}

TEST(FactFileTest, RejectsSignedAndJunkRationals) {
  // std::stoull accepted every one of these: "-1" wraps to 2^64-1 (so
  // "-1/2" became a numerator ~9.2e18, rejected only as "> den" by luck,
  // and "-1/-2" parsed as a huge but VALID probability), "+1" and junk
  // suffixes parse silently. The strict parser makes them typed errors.
  for (const char* line :
       {"R(a,b) -1/2\n", "R(a,b) +1/2\n", "R(a,b) 1/-2\n", "R(a,b) 1/+2\n",
        "R(a,b) -1/-2\n", "R(a,b) 1a/2\n", "R(a,b) 1/2x\n",
        "R(a,b) 0x1/2\n", "R(a,b) 18446744073709551616/2\n"}) {
    auto pdb = ParseFactText(line);
    ASSERT_FALSE(pdb.ok()) << line;
    EXPECT_EQ(pdb.status().code(), StatusCode::kInvalidArgument) << line;
  }
  // Plain digit runs keep parsing.
  auto ok = ParseFactText("R(a,b) 1/2\n");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok->probability(0) == Probability::Half());
}

TEST(FactFileTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadFactFile("/nonexistent/file.facts").status().code(),
            StatusCode::kNotFound);
}

TEST(DotExportTest, NfaRendersStatesAndEdges) {
  Nfa nfa;
  StateId a = nfa.AddState();
  StateId b = nfa.AddState();
  nfa.MarkInitial(a);
  nfa.MarkAccepting(b);
  nfa.AddTransition(a, 7, b);
  std::string dot = NfaToDot(nfa, [](SymbolId s) {
    return "sym" + std::to_string(s);
  });
  EXPECT_NE(dot.find("digraph nfa"), std::string::npos);
  EXPECT_NE(dot.find("q0 -> q1"), std::string::npos);
  EXPECT_NE(dot.find("sym7"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
}

TEST(DotExportTest, NftaRendersHyperedges) {
  Nfta t;
  StateId q = t.AddState();
  StateId a = t.AddState();
  StateId b = t.AddState();
  t.SetInitialState(q);
  t.AddTransition(q, 0, {a, b});
  t.AddTransition(a, 1, {});
  std::string dot = NftaToDot(t);
  EXPECT_NE(dot.find("digraph nfta"), std::string::npos);
  EXPECT_NE(dot.find("h0"), std::string::npos);    // hyperedge point
  EXPECT_NE(dot.find("leaf1"), std::string::npos); // leaf marker
}

TEST(DotExportTest, DecompositionShowsChiAndXi) {
  auto qi = MakePathQuery(2).MoveValue();
  auto hd = Decompose(qi.query, 1).MoveValue();
  std::string dot = DecompositionToDot(hd, qi.query, qi.schema);
  EXPECT_NE(dot.find("digraph hd"), std::string::npos);
  EXPECT_NE(dot.find("R1"), std::string::npos);
  EXPECT_NE(dot.find("x1"), std::string::npos);
}

}  // namespace
}  // namespace pqe
