// Tests for the batched fast sampling kernels (docs/performance.md, "Kernel
// modes"): block RNG generation must reproduce the scalar stream word for
// word, AliasPicker draws must match the weight proportions (χ²), and the
// kernel_mode=fast tier of every sampling layer (CountNFA, CountNFTA,
// Karp–Luby, Monte Carlo, the engine) must stay inside the accuracy band of
// an exact oracle while being fixed-seed reproducible and thread-count
// invariant. kernel_mode=exact must remain bit-identical to the default
// configuration — the fast tier must not perturb the golden path.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "automata/nfa.h"
#include "automata/nfta.h"
#include "core/engine.h"
#include "counting/count_nfa.h"
#include "counting/count_nfta.h"
#include "counting/exact.h"
#include "counting/weighted_pick.h"
#include "cq/builders.h"
#include "lineage/karp_luby.h"
#include "lineage/lineage.h"
#include "lineage/monte_carlo.h"
#include "util/extfloat.h"
#include "util/rng.h"
#include "util/span.h"
#include "workload/generators.h"

namespace pqe {
namespace {

// --- Block RNG -----------------------------------------------------------

TEST(RngBlockTest, FillBlockMatchesScalarNext) {
  for (uint64_t seed : {0ull, 1ull, 0x5eedull, 0xffffffffffffffffull}) {
    Rng block_rng(seed);
    Rng scalar_rng(seed);
    // Odd sizes + back-to-back blocks: the state hand-off between blocks
    // must be seamless.
    std::vector<uint64_t> words(257);
    block_rng.FillBlock(words.data(), words.size());
    for (size_t i = 0; i < words.size(); ++i) {
      ASSERT_EQ(words[i], scalar_rng.Next()) << "seed " << seed << " i " << i;
    }
    block_rng.FillBlock(words.data(), 3);
    for (size_t i = 0; i < 3; ++i) {
      ASSERT_EQ(words[i], scalar_rng.Next()) << "second block i " << i;
    }
    // And the scalar stream continues from where the blocks left off.
    ASSERT_EQ(block_rng.Next(), scalar_rng.Next());
  }
}

TEST(RngBlockTest, DoubleBlockMatchesNextDouble) {
  Rng block_rng(0xb10c);
  Rng scalar_rng(0xb10c);
  std::vector<uint64_t> words(100);
  block_rng.FillBlock(words.data(), words.size());
  DoubleBlock doubles{Span<uint64_t>(words)};
  ASSERT_EQ(doubles.size(), words.size());
  for (size_t i = 0; i < doubles.size(); ++i) {
    const double d = doubles[i];
    ASSERT_EQ(d, scalar_rng.NextDouble()) << "i " << i;
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngBlockTest, BoundedFromWordInRangeAndRoughlyUniform) {
  Rng rng(0x60d);
  const uint64_t kBound = 8;
  const size_t kDraws = 80000;
  std::vector<size_t> counts(kBound, 0);
  for (size_t i = 0; i < kDraws; ++i) {
    const uint64_t v = Rng::BoundedFromWord(rng.Next(), kBound);
    ASSERT_LT(v, kBound);
    ++counts[v];
  }
  // χ² with 7 df: P(X > 24.32) = 0.001.
  const double expected = static_cast<double>(kDraws) / kBound;
  double chi2 = 0.0;
  for (size_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 24.32);
  // Edge words.
  EXPECT_EQ(Rng::BoundedFromWord(0, 17), 0u);
  EXPECT_EQ(Rng::BoundedFromWord(~0ull, 17), 16u);
  EXPECT_EQ(Rng::BoundedFromWord(~0ull, 1), 0u);
}

// --- AliasPicker vs exact proportions ------------------------------------

TEST(FastKernelsTest, AliasChiSquaredOnRandomTables) {
  // Randomized weight tables: the empirical draw frequencies must match the
  // exact proportions. Critical value ≈ df + 4·√(2·df) (≈ 0.0002 tail for
  // these df) keeps the fixed-seed check deterministic and tight.
  Rng setup(0x7ab1e);
  for (int round = 0; round < 10; ++round) {
    const size_t n = 2 + setup.NextBounded(14);
    std::vector<ExtFloat> weights(n);
    std::vector<double> raw(n, 0.0);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t w = setup.NextBounded(50);  // zeros allowed
      weights[i] = ExtFloat::FromUint64(w);
      raw[i] = static_cast<double>(w);
      total += raw[i];
    }
    if (total == 0.0) {
      weights[0] = ExtFloat::FromUint64(1);
      raw[0] = 1.0;
      total = 1.0;
    }
    AliasPicker picker(weights);
    Rng rng(round * 977 + 5);
    const size_t kDraws = 60000;
    std::vector<size_t> counts(n, 0);
    for (size_t i = 0; i < kDraws; ++i) ++counts[picker.Pick(&rng)];
    double chi2 = 0.0;
    size_t df = 0;
    for (size_t i = 0; i < n; ++i) {
      if (raw[i] == 0.0) {
        ASSERT_EQ(counts[i], 0u) << "round " << round << " zero index " << i;
        continue;
      }
      ++df;
      const double expected = kDraws * raw[i] / total;
      const double d = static_cast<double>(counts[i]) - expected;
      chi2 += d * d / expected;
    }
    if (df > 1) {
      const double crit =
          static_cast<double>(df - 1) +
          4.0 * std::sqrt(2.0 * static_cast<double>(df - 1));
      EXPECT_LT(chi2, crit) << "round " << round << " df " << df - 1;
    }
  }
}

// --- Counting-core fast tier vs exact oracles ----------------------------

// Strings over {a, b} containing at least one 'a', accepted ambiguously
// (every 'a' position spawns a run): |L_n| = 2^n − 1.
Nfa AtLeastOneANfa() {
  Nfa a;
  StateId q0 = a.AddState();
  StateId q1 = a.AddState();
  a.EnsureAlphabetSize(2);
  a.MarkInitial(q0);
  a.MarkAccepting(q1);
  a.AddTransition(q0, 0, q0);
  a.AddTransition(q0, 1, q0);
  a.AddTransition(q0, 0, q1);
  a.AddTransition(q1, 0, q1);
  a.AddTransition(q1, 1, q1);
  return a;
}

// Binary trees with two leaf colors, counted ambiguously (Catalan-like).
Nfta CatalanNfta() {
  Nfta t;
  StateId q = t.AddState();
  t.SetInitialState(q);
  t.AddTransition(q, 0, {q, q});
  t.AddTransition(q, 0, {});
  t.AddTransition(q, 1, {});
  return t;
}

EstimatorConfig KernelConfig(uint64_t seed, KernelMode mode) {
  EstimatorConfig cfg;
  cfg.epsilon = 0.3;
  cfg.seed = seed;
  cfg.pool_size = 96;
  cfg.kernel_mode = mode;
  return cfg;
}

TEST(FastKernelsTest, CountNfaFastTracksExactOracle) {
  Nfa a = AtLeastOneANfa();
  const size_t n = 12;
  auto exact = ExactCountNfaStrings(a, n);
  ASSERT_TRUE(exact.ok());
  const double exact_log2 = ExtFloat::FromBigUint(*exact).Log2();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto fast = CountNfaStrings(a, n, KernelConfig(seed, KernelMode::kFast));
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    EXPECT_NEAR(fast->value.Log2(), exact_log2, 0.6) << "seed " << seed;
    EXPECT_GT(fast->stats.alias_builds, 0u);
    EXPECT_GT(fast->stats.batch_draws, 0u);
    // The fast tier routes every table through the alias picker.
    EXPECT_EQ(fast->stats.picker_builds, 0u);
  }
}

TEST(FastKernelsTest, CountNftaFastTracksExactOracle) {
  Nfta t = CatalanNfta();
  const size_t n = 11;
  auto exact = ExactCountNftaTrees(t, n);
  ASSERT_TRUE(exact.ok());
  const double exact_log2 = ExtFloat::FromBigUint(*exact).Log2();
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto fast = CountNftaTrees(t, n, KernelConfig(seed, KernelMode::kFast));
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    EXPECT_NEAR(fast->value.Log2(), exact_log2, 0.6) << "seed " << seed;
    EXPECT_GT(fast->stats.alias_builds, 0u);
    EXPECT_GT(fast->stats.batch_draws, 0u);
    EXPECT_EQ(fast->stats.picker_builds, 0u);
  }
}

TEST(FastKernelsTest, FastModeFixedSeedReproducible) {
  Nfta t = CatalanNfta();
  auto a = CountNftaTrees(t, 11, KernelConfig(0xf00, KernelMode::kFast));
  auto b = CountNftaTrees(t, 11, KernelConfig(0xf00, KernelMode::kFast));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->value.ToString(), b->value.ToString());
  EXPECT_EQ(a->stats.attempts, b->stats.attempts);
  EXPECT_EQ(a->stats.accepted, b->stats.accepted);
}

TEST(FastKernelsTest, FastModeThreadCountInvariant) {
  // Median-of-R amplification fans repetitions across threads; the fast
  // tier keeps the per-repetition streams fixed by (seed, index), so the
  // aggregate must be bit-identical at every thread count.
  Nfta t = CatalanNfta();
  EstimatorConfig serial = KernelConfig(0xbead, KernelMode::kFast);
  serial.repetitions = 5;
  serial.num_threads = 1;
  EstimatorConfig parallel = serial;
  parallel.num_threads = 4;
  auto a = CountNftaTrees(t, 11, serial);
  auto b = CountNftaTrees(t, 11, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->value.ToString(), b->value.ToString());
  EXPECT_EQ(a->stats.attempts, b->stats.attempts);
}

TEST(FastKernelsTest, ExactModeUnchangedByKernelField) {
  // kernel_mode=exact must be the same code path as a config that predates
  // the field: estimates and stats bit-identical, no alias machinery.
  Nfta t = CatalanNfta();
  EstimatorConfig legacy_default;
  legacy_default.epsilon = 0.3;
  legacy_default.seed = 0x90d;
  legacy_default.pool_size = 96;
  auto base = CountNftaTrees(t, 11, legacy_default);
  auto exact_mode =
      CountNftaTrees(t, 11, KernelConfig(0x90d, KernelMode::kExact));
  ASSERT_TRUE(base.ok() && exact_mode.ok());
  EXPECT_EQ(exact_mode->value.ToString(), base->value.ToString());
  EXPECT_EQ(exact_mode->stats.attempts, base->stats.attempts);
  EXPECT_EQ(exact_mode->stats.accepted, base->stats.accepted);
  EXPECT_EQ(exact_mode->stats.picker_builds, base->stats.picker_builds);
  EXPECT_EQ(exact_mode->stats.alias_builds, 0u);
  EXPECT_EQ(exact_mode->stats.batch_draws, 0u);
}

// --- Karp–Luby fast tier -------------------------------------------------

TEST(FastKernelsTest, KarpLubyFastWithinBandOfExact) {
  auto qi = MakePathQuery(3).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 2;
  opt.density = 0.9;
  opt.seed = 9;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.seed = 5;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  auto lineage = BuildLineage(qi.query, pdb.database()).MoveValue();
  auto truth = ExactDnfProbability(lineage, pdb).MoveValue().ToDouble();
  ASSERT_GT(truth, 0.0);
  KarpLubyConfig cfg;
  cfg.epsilon = 0.05;
  cfg.seed = 3;
  cfg.kernel_mode = KernelMode::kFast;
  auto kl = KarpLubyEstimate(lineage, pdb, cfg).MoveValue();
  EXPECT_NEAR(kl.probability / truth, 1.0, 0.15);

  // Fixed-seed reproducible, and bit-identical across thread counts (the
  // shard structure is unchanged by the batched kernel).
  auto again = KarpLubyEstimate(lineage, pdb, cfg).MoveValue();
  EXPECT_EQ(kl.probability, again.probability);
  EXPECT_EQ(kl.hits, again.hits);
  KarpLubyConfig threaded = cfg;
  threaded.num_threads = 4;
  auto parallel = KarpLubyEstimate(lineage, pdb, threaded).MoveValue();
  EXPECT_EQ(kl.probability, parallel.probability);
  EXPECT_EQ(kl.hits, parallel.hits);
}

// --- Monte Carlo fast tier -----------------------------------------------

TEST(FastKernelsTest, MonteCarloFastMatchesExactProbability) {
  auto qi = MakePathQuery(2).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R2", {"b", "c"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  MonteCarloConfig cfg;
  cfg.seed = 21;
  cfg.num_samples = 200000;
  cfg.kernel_mode = KernelMode::kFast;
  auto mc = MonteCarloPqe(qi.query, pdb, cfg).MoveValue();
  EXPECT_NEAR(mc.probability, 0.25, 0.01);
  MonteCarloConfig threaded = cfg;
  threaded.num_threads = 4;
  auto parallel = MonteCarloPqe(qi.query, pdb, threaded).MoveValue();
  EXPECT_EQ(mc.probability, parallel.probability);
  EXPECT_EQ(mc.hits, parallel.hits);
}

// --- Engine plumbing -----------------------------------------------------

TEST(FastKernelsTest, EngineFastModeEndToEnd) {
  auto qi = MakePathQuery(4).MoveValue();
  LayeredGraphOptions opt;
  opt.width = 3;
  opt.density = 0.6;
  opt.seed = 3;
  auto db = MakeLayeredPathDatabase(qi, opt).MoveValue();
  ProbabilityModel pm;
  pm.max_denominator = 8;
  pm.seed = 5;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);

  auto exact_opts = PqeEngine::Options::Builder()
                        .Method(PqeMethod::kFpras)
                        .Epsilon(0.25)
                        .Seed(11)
                        .Build()
                        .MoveValue();
  auto fast_opts = PqeEngine::Options::Builder(exact_opts)
                       .Kernels(KernelMode::kFast)
                       .Build()
                       .MoveValue();
  PqeEngine exact_engine(exact_opts);
  PqeEngine fast_engine(fast_opts);
  const EvalResponse exact_resp =
      exact_engine.EvaluateRequest(EvalRequest::ForQuery(qi.query, pdb));
  ASSERT_TRUE(exact_resp.status.ok()) << exact_resp.status.ToString();
  const EvalResponse fast_resp =
      fast_engine.EvaluateRequest(EvalRequest::ForQuery(qi.query, pdb));
  ASSERT_TRUE(fast_resp.status.ok()) << fast_resp.status.ToString();
  const PqeAnswer& exact = exact_resp.answer;
  const PqeAnswer& fast = fast_resp.answer;
  ASSERT_GT(exact.probability, 0.0);
  ASSERT_GT(fast.probability, 0.0);
  // Both tiers target the same ε band; their ratio stays within the
  // combined envelope.
  EXPECT_NEAR(std::log2(fast.probability / exact.probability), 0.0, 0.9);
  ASSERT_TRUE(fast.count_stats.has_value());
  EXPECT_GT(fast.count_stats->alias_builds, 0u);
  EXPECT_GT(fast.count_stats->batch_draws, 0u);
  ASSERT_TRUE(exact.count_stats.has_value());
  EXPECT_EQ(exact.count_stats->alias_builds, 0u);

  // The per-request override selects the fast tier on an exact-mode engine
  // and must reproduce the fast engine's answer bit for bit.
  EvalRequest req = EvalRequest::ForQuery(qi.query, pdb);
  req.kernels = KernelMode::kFast;
  req.seed = 11;
  EvalResponse resp = exact_engine.EvaluateRequest(req);
  ASSERT_TRUE(resp.status.ok());
  EXPECT_EQ(resp.answer.probability, fast.probability);
}

TEST(FastKernelsTest, KernelModeStringsRoundTrip) {
  EXPECT_STREQ(KernelModeToString(KernelMode::kExact), "exact");
  EXPECT_STREQ(KernelModeToString(KernelMode::kFast), "fast");
  auto exact = KernelModeFromString("exact");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, KernelMode::kExact);
  auto fast = KernelModeFromString("fast");
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(*fast, KernelMode::kFast);
  auto bad = KernelModeFromString("warp");
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pqe
