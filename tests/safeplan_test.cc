// Tests for the safe-plan (extensional) evaluator: exactness on hierarchical
// queries, rejection of unsafe ones.

#include <gtest/gtest.h>

#include "cq/builders.h"
#include "cq/parser.h"
#include "eval/eval.h"
#include "safeplan/safe_plan.h"
#include "workload/generators.h"

namespace pqe {
namespace {

TEST(SafeQueryTest, ClassifiesFamilies) {
  EXPECT_TRUE(IsSafeQuery(MakeStarQuery(4)->query));
  EXPECT_TRUE(IsSafeQuery(MakePathQuery(1)->query));
  EXPECT_TRUE(IsSafeQuery(MakePathQuery(2)->query));
  EXPECT_FALSE(IsSafeQuery(MakePathQuery(3)->query));
  EXPECT_FALSE(IsSafeQuery(MakeH0Query()->query));
  EXPECT_FALSE(IsSafeQuery(MakeSelfJoinPathQuery(2)->query));  // self-join
}

TEST(SafePlanTest, SingleAtomIndependentOr) {
  auto qi = MakePathQuery(1).MoveValue();
  Database db(qi.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("R1", {"c", "d"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  ASSERT_TRUE(pdb.SetProbability(0, Probability{1, 2}).ok());
  ASSERT_TRUE(pdb.SetProbability(1, Probability{1, 4}).ok());
  // 1 - (1/2)(3/4) = 5/8.
  EXPECT_NEAR(SafePlanProbability(qi.query, pdb).value(), 0.625, 1e-12);
}

TEST(SafePlanTest, RejectsUnsafeQueries) {
  auto h0 = MakeH0Query().MoveValue();
  Database db(h0.schema);
  ASSERT_TRUE(db.AddFactByName("R", {"a"}).ok());
  ASSERT_TRUE(db.AddFactByName("S", {"a", "b"}).ok());
  ASSERT_TRUE(db.AddFactByName("T", {"b"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  EXPECT_EQ(SafePlanProbability(h0.query, pdb).status().code(),
            StatusCode::kNotSupported);
}

TEST(SafePlanTest, RejectsSelfJoins) {
  auto sj = MakeSelfJoinPathQuery(2).MoveValue();
  Database db(sj.schema);
  ASSERT_TRUE(db.AddFactByName("R", {"a", "b"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  EXPECT_EQ(SafePlanProbability(sj.query, pdb).status().code(),
            StatusCode::kNotSupported);
}

// Property: safe plan == enumeration across random hierarchical instances.
class SafePlanAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SafePlanAgreement, StarQueriesMatchEnumeration) {
  const uint64_t seed = GetParam();
  auto star = MakeStarQuery(2 + seed % 3).MoveValue();
  StarDataOptions sopt;
  sopt.hubs = 2;
  sopt.spokes_per_hub = 2;
  sopt.density = 0.7;
  sopt.seed = seed;
  auto db = MakeStarDatabase(star, sopt).MoveValue();
  if (db.NumFacts() > 15) GTEST_SKIP();
  ProbabilityModel pm;
  pm.seed = seed * 3 + 1;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  auto truth = ExactProbabilityByEnumeration(pdb, star.query).MoveValue();
  auto sp = SafePlanProbability(star.query, pdb);
  ASSERT_TRUE(sp.ok()) << sp.status().ToString();
  EXPECT_NEAR(*sp, truth.ToDouble(), 1e-9) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafePlanAgreement,
                         ::testing::Range<uint64_t>(1, 17));

TEST_P(SafePlanAgreement, Path2MatchesEnumeration) {
  const uint64_t seed = GetParam();
  auto qi = MakePathQuery(2).MoveValue();  // length 2 is hierarchical
  RandomDatabaseOptions ropt;
  ropt.domain_size = 3;
  ropt.facts_per_relation = 5;
  ropt.seed = seed;
  auto db = MakeRandomDatabase(qi.schema, ropt).MoveValue();
  if (db.NumFacts() > 15) GTEST_SKIP();
  ProbabilityModel pm;
  pm.seed = seed * 7 + 2;
  ProbabilisticDatabase pdb = AttachProbabilities(std::move(db), pm);
  auto truth = ExactProbabilityByEnumeration(pdb, qi.query).MoveValue();
  auto sp = SafePlanProbability(qi.query, pdb);
  ASSERT_TRUE(sp.ok()) << sp.status().ToString();
  EXPECT_NEAR(*sp, truth.ToDouble(), 1e-9) << "seed=" << seed;
}

TEST(SafePlanTest, DisjointComponentsMultiply) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("A", 1).ok());
  ASSERT_TRUE(schema.AddRelation("B", 1).ok());
  auto q = ParseQuery(schema, "A(x), B(y)").MoveValue();
  Database db(schema);
  ASSERT_TRUE(db.AddFactByName("A", {"a"}).ok());
  ASSERT_TRUE(db.AddFactByName("B", {"b"}).ok());
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  ASSERT_TRUE(pdb.SetProbability(0, Probability{1, 2}).ok());
  ASSERT_TRUE(pdb.SetProbability(1, Probability{1, 3}).ok());
  EXPECT_NEAR(SafePlanProbability(q, pdb).value(), 1.0 / 6.0, 1e-12);
}

TEST(SafePlanTest, EmptyRelationGivesZero) {
  auto star = MakeStarQuery(2).MoveValue();
  Database db(star.schema);
  ASSERT_TRUE(db.AddFactByName("R1", {"h", "l"}).ok());
  // R2 empty → no hub can satisfy both atoms.
  ProbabilisticDatabase pdb = ProbabilisticDatabase::Uniform(std::move(db));
  EXPECT_NEAR(SafePlanProbability(star.query, pdb).value(), 0.0, 1e-12);
}

}  // namespace
}  // namespace pqe
